// The network transport's contracts, all over real loopback sockets:
//
//   - the wire codec round-trips and the strict FrameReader rejects
//     torn, corrupt and oversized frames with byte-offset provenance
//     (mirroring the event log's reader discipline);
//   - a full socket-fed session is indistinguishable from an
//     in-process one: the event log the server writes is BYTE-IDENTICAL
//     to the log an in-process LiveEngine writes over the same feed,
//     and replay-equals-live extends over the socket;
//   - protocol defects (CRC corruption, out-of-order ticks, records
//     before SessionMeta) close the connection but never the session -
//     a reconnecting FeedClient resumes from the status cursor and
//     completes;
//   - subscribers cannot perturb the tick loop: a slow client hits the
//     drop-oldest policy without stalling publish(), killed clients
//     are reaped, and the decision stream with 8 subscribers (some
//     killed mid-stream, one mute) is byte-identical to the
//     0-subscriber run.
//
// Runs in every CI leg including TSan (short windows, and the suite is
// the thread-heavy one - acceptor, writer and serve threads all race
// here if they race anywhere).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/experiment.h"
#include "core/workload.h"
#include "net/feed_client.h"
#include "net/http_metrics.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/subscriber_hub.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "service/event_log.h"
#include "service/live_engine.h"
#include "service/replay.h"
#include "test_support.h"

namespace cebis::net {
namespace {

constexpr int kIoMs = 5000;

// --- wire codec (no threads, no fixture) ------------------------------------

TEST(NetWireTest, TelemetryRoundTrip) {
  TelemetryFrame t;
  t.step = 42;
  t.cost_so_far = 1234.5678;
  t.energy_so_far = 9.25;
  t.bill_last = 1.5;
  t.bill_mean = 1.25;
  t.bill_ewma = 1.375;
  t.have_savings = true;
  t.savings_last = 0.5;
  t.savings_mean = 0.25;
  t.savings_ewma = 0.375;
  t.plan_rebuilds = 7;
  const TelemetryFrame back = decode_telemetry(encode_telemetry(t), 0);
  EXPECT_EQ(back.step, t.step);
  EXPECT_EQ(back.cost_so_far, t.cost_so_far);
  EXPECT_EQ(back.energy_so_far, t.energy_so_far);
  EXPECT_EQ(back.bill_ewma, t.bill_ewma);
  EXPECT_TRUE(back.have_savings);
  EXPECT_EQ(back.savings_mean, t.savings_mean);
  EXPECT_EQ(back.plan_rebuilds, t.plan_rebuilds);
}

TEST(NetWireTest, StatusAndHeadroomRoundTrip) {
  IngestStatusFrame s;
  s.has_session = true;
  s.complete = false;
  s.steps_done = 11;
  s.steps_buffered = 3;
  s.cursors = {{4, 312}, {9, 300}};
  const IngestStatusFrame back = decode_ingest_status(encode_ingest_status(s), 0);
  EXPECT_TRUE(back.has_session);
  EXPECT_FALSE(back.complete);
  EXPECT_EQ(back.steps_done, 11);
  EXPECT_EQ(back.steps_buffered, 3);
  ASSERT_EQ(back.cursors.size(), 2u);
  EXPECT_EQ(back.cursors[0].hub, 4);
  EXPECT_EQ(back.cursors[0].next_interval, 312);
  EXPECT_EQ(back.cursors[1].hub, 9);

  SealHeadroomFrame h;
  h.sealed_end = 100;
  h.needed_end = 96;
  h.steps_done = 8;
  const SealHeadroomFrame hb = decode_seal_headroom(encode_seal_headroom(h), 0);
  EXPECT_EQ(hb.sealed_end, 100);
  EXPECT_EQ(hb.needed_end, 96);
  EXPECT_EQ(hb.steps_done, 8);
}

TEST(NetWireTest, RejectsCursorCountLargerThanThePayload) {
  // A truncated/garbled IngestStatus whose cursor-count prefix claims
  // ~2^31 entries with an empty tail. Before the check_count guard,
  // decode resized the cursor vector FIRST - a multi-gigabyte
  // allocation driven by four corrupt bytes - and only then failed
  // field-by-field. The strict-reader contract wants a clean
  // malformed-payload error naming the frame offset instead.
  IngestStatusFrame s;
  s.has_session = true;
  s.complete = false;
  s.steps_done = 11;
  s.steps_buffered = 3;
  std::vector<std::uint8_t> payload = encode_ingest_status(s);
  // Overwrite the trailing u32 cursor count (0) with a huge claim.
  const std::uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(payload.data() + payload.size() - sizeof(huge), &huge,
              sizeof(huge));
  try {
    (void)decode_ingest_status(payload, 1234);
    FAIL() << "oversized cursor count must throw";
  } catch (const service::EventLogError& e) {
    EXPECT_EQ(e.byte_offset(), 1234);
    EXPECT_NE(std::string(e.what()).find("length prefix"), std::string::npos)
        << e.what();
  }
}

TEST(NetWireTest, FrameTypeNames) {
  EXPECT_STREQ(frame_type_name(
                   static_cast<std::uint8_t>(service::RecordType::kPriceTick)),
               "PriceTick");
  EXPECT_STREQ(
      frame_type_name(static_cast<std::uint8_t>(NetFrameType::kTelemetry)),
      "Telemetry");
  EXPECT_STREQ(
      frame_type_name(static_cast<std::uint8_t>(NetFrameType::kIngestStatus)),
      "IngestStatus");
  EXPECT_STREQ(frame_type_name(250), "unknown");
}

/// A connected loopback socket pair (client side / accepted side).
struct SocketPair {
  Listener listener{0};
  Socket client;
  Socket server;
  SocketPair() {
    client = connect_to("127.0.0.1", listener.port(), 2000);
    std::optional<Socket> accepted = listener.accept(2000);
    if (!accepted) throw NetError("SocketPair: accept timed out");
    server = std::move(*accepted);
  }
};

TEST(NetWireTest, FrameReaderAcceptsCleanCloseAtBoundary) {
  SocketPair pair;
  write_frame(pair.client, static_cast<std::uint8_t>(NetFrameType::kFeedEnd),
              {}, kIoMs);
  pair.client.close();
  FrameReader reader(pair.server);
  std::optional<Frame> frame = reader.next(kIoMs);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<std::uint8_t>(NetFrameType::kFeedEnd));
  EXPECT_TRUE(frame->payload.empty());
  EXPECT_FALSE(reader.next(kIoMs).has_value());  // orderly end of stream
}

TEST(NetWireTest, FrameReaderRejectsTornFrame) {
  SocketPair pair;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, static_cast<std::uint8_t>(NetFrameType::kTelemetry),
               encode_telemetry(TelemetryFrame{}));
  // First frame whole, second frame cut mid-payload: the reader must
  // name the offset the TORN frame began at, not the stream start.
  const std::size_t first_end = bytes.size();
  append_frame(bytes, static_cast<std::uint8_t>(NetFrameType::kTelemetry),
               encode_telemetry(TelemetryFrame{}));
  bytes.resize(first_end + 7);
  pair.client.write_all(bytes.data(), bytes.size(), kIoMs);
  pair.client.close();

  FrameReader reader(pair.server);
  EXPECT_TRUE(reader.next(kIoMs).has_value());
  try {
    (void)reader.next(kIoMs);
    FAIL() << "a torn frame must not read back";
  } catch (const WireError& e) {
    EXPECT_EQ(e.byte_offset(), static_cast<std::int64_t>(first_end));
  }
}

TEST(NetWireTest, FrameReaderRejectsCorruptCrc) {
  SocketPair pair;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, static_cast<std::uint8_t>(NetFrameType::kTelemetry),
               encode_telemetry(TelemetryFrame{}));
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  pair.client.write_all(bytes.data(), bytes.size(), kIoMs);
  FrameReader reader(pair.server);
  try {
    (void)reader.next(kIoMs);
    FAIL() << "a CRC mismatch must not read back";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(NetWireTest, FrameReaderRejectsOversizedPayloadBeforeAllocating) {
  SocketPair pair;
  std::vector<std::uint8_t> bytes = {static_cast<std::uint8_t>(
      NetFrameType::kTelemetry)};
  const std::uint32_t huge = 0x7fffffff;
  bytes.resize(1 + sizeof(huge));
  std::memcpy(bytes.data() + 1, &huge, sizeof(huge));
  pair.client.write_all(bytes.data(), bytes.size(), kIoMs);
  FrameReader reader(pair.server, /*max_payload=*/4096);
  EXPECT_THROW((void)reader.next(kIoMs), WireError);
}

TEST(NetWireTest, FrameReaderTimesOutMidFrame) {
  SocketPair pair;
  const std::uint8_t type = static_cast<std::uint8_t>(NetFrameType::kFeedEnd);
  pair.client.write_all(&type, 1, kIoMs);  // ...and then silence
  FrameReader reader(pair.server);
  EXPECT_THROW((void)reader.next(100), TimeoutError);
}

TEST(NetWireTest, StreamHeaderRejectsForeignBytes) {
  SocketPair pair;
  const char garbage[] = "GET /metrics HTTP/1.1\r\n";
  pair.client.write_all(garbage, sizeof(garbage) - 1, kIoMs);
  EXPECT_THROW((void)read_stream_header(pair.server, kIoMs), WireError);

  SocketPair pair2;
  write_stream_header(pair2.client, Channel::kSubscribe, kIoMs);
  EXPECT_EQ(read_stream_header(pair2.server, kIoMs), Channel::kSubscribe);
}

TEST(NetWireTest, FeedClientGivesUpAfterMaxAttempts) {
  std::uint16_t dead_port = 0;
  {
    Listener probe(0);
    dead_port = probe.port();
  }  // closed: connections to it are refused
  FeedClientOptions options;
  options.port = dead_port;
  options.connect_timeout_ms = 200;
  options.max_attempts = 2;
  options.initial_backoff_ms = 10;
  FeedClient client(options);
  EXPECT_THROW((void)client.run(service::SessionMeta{}, {}, {}), NetError);
}

// --- loopback sessions against a real Server --------------------------------

class NetLoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new core::Fixture(core::Fixture::make(test::kTestSeed));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static core::Fixture* fixture_;
};

core::Fixture* NetLoopbackTest::fixture_ = nullptr;

struct SessionFeed {
  service::SessionMeta meta;
  std::vector<service::PriceTickRecord> ticks;
  std::vector<service::WorkloadStepRecord> steps;
};

/// The session cebis_feed would synthesize: the fixture's own market as
/// the settlement feed, the trace as demand, over the first `hours`.
SessionFeed make_feed(const core::Fixture& fixture, std::int64_t hours) {
  SessionFeed feed;
  const Period trace = fixture.trace.period();
  const Period window{trace.begin, trace.begin + hours};
  const core::TraceWorkload demand(fixture.trace, fixture.allocation);

  feed.meta.seed = test::kTestSeed;
  feed.meta.router = "price-aware";
  feed.meta.period = window;
  feed.meta.steps_per_hour = demand.steps_per_hour();
  feed.meta.samples_per_hour = 12;

  const int sph = feed.meta.samples_per_hour;
  const Period priced{window.begin - feed.meta.delay_hours, window.end};
  const market::PriceSet& prices = fixture.prices_covering(priced, sph);
  std::vector<HubId> hubs;
  for (const core::Cluster& c : fixture.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }
  for (std::int64_t interval = priced.begin * sph;
       interval < window.end * sph; ++interval) {
    const HourIndex hour = interval / sph;
    const int sub = static_cast<int>(interval - hour * sph);
    for (const HubId hub : hubs) {
      feed.ticks.push_back({hub, interval, prices.rt_at(hub, hour, sub).value()});
    }
  }

  const std::int64_t steps = window.hours() * feed.meta.steps_per_hour;
  std::vector<double> row(demand.state_count(), 0.0);
  for (std::int64_t j = 0; j < steps; ++j) {
    demand.demand(j, row);
    feed.steps.push_back({j, row});
  }
  return feed;
}

/// The server's exact session, run in process: same LiveConfig mapping
/// as Server::Impl::open_session, same buffer-then-pump discipline,
/// same feed order (interleave_feed). The event log this writes must be
/// byte-identical to the one the server writes over the socket.
core::RunResult run_in_process(const core::Fixture& fixture,
                               const SessionFeed& feed,
                               const std::string& log_path) {
  service::LiveConfig cfg;
  cfg.router = feed.meta.router;
  cfg.router_config = feed.meta.router_config;
  cfg.period = feed.meta.period;
  cfg.steps_per_hour = feed.meta.steps_per_hour;
  cfg.samples_per_hour = feed.meta.samples_per_hour;
  cfg.energy = feed.meta.energy;
  cfg.enforce_p95 = feed.meta.enforce_p95;
  cfg.delay_hours = feed.meta.delay_hours;
  cfg.delay_steps = feed.meta.delay_steps;
  cfg.record_hourly_energy = feed.meta.record_hourly_energy;
  cfg.storage = feed.meta.storage;
  cfg.shadow_baseline = true;  // ServerOptions default

  service::EventLogWriter log(log_path);
  service::LiveEngine live(fixture, cfg, &log);
  std::deque<std::vector<double>> pending;
  const auto pump = [&] {
    while (!live.done() && !pending.empty() &&
           live.needed_end() <= live.sealed_end()) {
      live.advance(pending.front());
      pending.pop_front();
    }
  };
  for (const service::EventRecord& record :
       interleave_feed(feed.meta, feed.ticks, feed.steps)) {
    if (const auto* tick = std::get_if<service::PriceTickRecord>(&record)) {
      live.on_price_tick(tick->hub, tick->interval, tick->price);
    } else if (const auto* step =
                   std::get_if<service::WorkloadStepRecord>(&record)) {
      pending.push_back(step->demand);
    }
    pump();
  }
  EXPECT_TRUE(live.done());
  core::RunResult result = live.finish();
  log.close();
  return result;
}

/// Runs Server::serve() on a background thread; stop_and_join() (or the
/// destructor) shuts it down even when the test fails mid-session.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options) : server_(std::move(options)) {
    thread_ = std::thread([this] { report_ = server_.serve(); });
  }
  ~ServerHarness() { (void)stop_and_join(); }

  [[nodiscard]] Server& server() noexcept { return server_; }

  /// Waits for serve() to return on its own (a completed feed).
  ServerReport join() {
    if (thread_.joinable()) thread_.join();
    return report_;
  }

  ServerReport stop_and_join() {
    server_.stop();
    return join();
  }

 private:
  Server server_;
  std::thread thread_;
  ServerReport report_;
};

ServerOptions loopback_options(const std::string& log_path) {
  ServerOptions options;
  options.log_path = log_path;
  options.read_timeout_ms = kIoMs;
  return options;
}

/// An ingest-channel connection with the server's opening status frame
/// already consumed - the raw-protocol counterpart of FeedClient.
struct RawFeeder {
  Socket sock;
  std::optional<FrameReader> reader;
  IngestStatusFrame status;

  explicit RawFeeder(std::uint16_t port) {
    sock = connect_to("127.0.0.1", port, 2000);
    write_stream_header(sock, Channel::kIngest, kIoMs);
    reader.emplace(sock);
    std::optional<Frame> frame = reader->next(kIoMs);
    if (!frame ||
        frame->type != static_cast<std::uint8_t>(NetFrameType::kIngestStatus)) {
      throw NetError("RawFeeder: no IngestStatus after the header");
    }
    status = decode_ingest_status(frame->payload, 0);
  }

  void send(const service::EventRecord& record) {
    write_frame(sock, static_cast<std::uint8_t>(service::record_type(record)),
                service::encode_record(record), kIoMs);
  }

  /// True when the server closed the connection (the strict-reader
  /// reaction to a protocol defect).
  bool server_closed() {
    try {
      return !reader->next(kIoMs).has_value();
    } catch (const NetError&) {
      return true;  // reset instead of FIN: still closed
    }
  }
};

TEST_F(NetLoopbackTest, SocketFedSessionMatchesInProcessByteForByte) {
  test::TempFile server_log("net_session_server.eventlog");
  test::TempFile local_log("net_session_local.eventlog");
  const SessionFeed feed = make_feed(*fixture_, 2);

  ServerHarness harness(loopback_options(server_log.path()));
  FeedClientOptions client_options;
  client_options.port = harness.server().ingest_port();
  FeedClient client(client_options);
  const FeedReport sent = client.run(feed.meta, feed.ticks, feed.steps);
  const ServerReport report = harness.join();

  EXPECT_EQ(sent.connections, 1);
  EXPECT_EQ(sent.records_skipped, 0);
  EXPECT_EQ(sent.final_steps_done,
            static_cast<std::int64_t>(feed.steps.size()));
  EXPECT_EQ(report.ticks_ingested,
            static_cast<std::int64_t>(feed.ticks.size()));
  EXPECT_EQ(report.steps_ingested,
            static_cast<std::int64_t>(feed.steps.size()));
  EXPECT_EQ(report.protocol_errors, 0);
  ASSERT_TRUE(report.result.has_value());

  // The transport added nothing: the log the server wrote over the
  // socket is byte-identical to an in-process session's, and both
  // RunResults and the replay agree bit-for-bit.
  const core::RunResult local =
      run_in_process(*fixture_, feed, local_log.path());
  EXPECT_EQ(service::diff_run_results(*report.result, local), "");
  EXPECT_EQ(test::slurp(server_log.path()), test::slurp(local_log.path()));
  EXPECT_FALSE(test::slurp(server_log.path()).empty());

  const core::RunResult replayed =
      service::replay_file(*fixture_, server_log.path());
  EXPECT_EQ(service::diff_run_results(*report.result, replayed), "");
}

TEST_F(NetLoopbackTest, CorruptFrameClosesConnectionButSessionSurvives) {
  test::TempFile server_log("net_corrupt.eventlog");
  const SessionFeed feed = make_feed(*fixture_, 2);
  ServerHarness harness(loopback_options(server_log.path()));

  const std::int64_t start =
      (feed.meta.period.begin - feed.meta.delay_hours) *
      feed.meta.samples_per_hour;
  std::size_t hubs = 0;
  {
    RawFeeder feeder(harness.server().ingest_port());
    EXPECT_FALSE(feeder.status.has_session);
    feeder.send(service::EventRecord{feed.meta});
    // The first interval's ticks land clean...
    for (const service::PriceTickRecord& tick : feed.ticks) {
      if (tick.interval != start) break;
      feeder.send(service::EventRecord{tick});
      ++hubs;
    }
    // ...then a CRC-corrupted tick: the strict reader must drop the
    // connection without ingesting it.
    std::vector<std::uint8_t> bytes;
    append_frame(bytes,
                 static_cast<std::uint8_t>(service::RecordType::kPriceTick),
                 service::encode_record(
                     service::EventRecord{feed.ticks[hubs]}));
    bytes.back() ^= 0xff;
    feeder.sock.write_all(bytes.data(), bytes.size(), kIoMs);
    EXPECT_TRUE(feeder.server_closed());
  }
  ASSERT_GT(hubs, 0u);

  // The session survived with a cursor past the clean ticks: the
  // FeedClient resumes, skips exactly those, and completes the feed.
  FeedClientOptions client_options;
  client_options.port = harness.server().ingest_port();
  FeedClient client(client_options);
  const FeedReport sent = client.run(feed.meta, feed.ticks, feed.steps);
  EXPECT_EQ(sent.records_skipped, static_cast<std::int64_t>(hubs));

  const ServerReport report = harness.join();
  ASSERT_TRUE(report.result.has_value());
  EXPECT_GE(report.protocol_errors, 1);
  EXPECT_EQ(report.ingest_connections, 2);
  bool offset_logged = false;
  for (const std::string& event : report.events) {
    offset_logged = offset_logged ||
                    event.find("byte offset") != std::string::npos;
  }
  EXPECT_TRUE(offset_logged);

  // Replay-equals-live holds across the defect + resume.
  const core::RunResult replayed =
      service::replay_file(*fixture_, server_log.path());
  EXPECT_EQ(service::diff_run_results(*report.result, replayed), "");
}

TEST_F(NetLoopbackTest, OutOfOrderTickClosesConnectionButSessionSurvives) {
  test::TempFile server_log("net_out_of_order.eventlog");
  const SessionFeed feed = make_feed(*fixture_, 2);
  ServerHarness harness(loopback_options(server_log.path()));

  const std::int64_t start =
      (feed.meta.period.begin - feed.meta.delay_hours) *
      feed.meta.samples_per_hour;
  {
    RawFeeder feeder(harness.server().ingest_port());
    feeder.send(service::EventRecord{feed.meta});
    // A gap: the assembler expects `start` first, gets `start + 1`.
    feeder.send(service::EventRecord{
        service::PriceTickRecord{feed.ticks[0].hub, start + 1, 31.0}});
    EXPECT_TRUE(feeder.server_closed());
  }

  FeedClientOptions client_options;
  client_options.port = harness.server().ingest_port();
  FeedClient client(client_options);
  const FeedReport sent = client.run(feed.meta, feed.ticks, feed.steps);
  EXPECT_EQ(sent.records_skipped, 0);  // the bad tick never took effect

  const ServerReport report = harness.join();
  ASSERT_TRUE(report.result.has_value());
  EXPECT_GE(report.protocol_errors, 1);
  const core::RunResult replayed =
      service::replay_file(*fixture_, server_log.path());
  EXPECT_EQ(service::diff_run_results(*report.result, replayed), "");
}

TEST_F(NetLoopbackTest, RecordsBeforeSessionMetaAreRejected) {
  test::TempFile server_log("net_no_meta.eventlog");
  ServerHarness harness(loopback_options(server_log.path()));
  {
    RawFeeder feeder(harness.server().ingest_port());
    feeder.send(service::EventRecord{
        service::PriceTickRecord{HubId{0}, 0, 10.0}});
    EXPECT_TRUE(feeder.server_closed());
  }
  const ServerReport report = harness.stop_and_join();
  EXPECT_FALSE(report.result.has_value());
  EXPECT_GE(report.protocol_errors, 1);
}

TEST_F(NetLoopbackTest, SessionMetaSeedMustMatchEmbeddedFixture) {
  test::TempFile server_log("net_seed_mismatch.eventlog");
  ServerOptions options = loopback_options(server_log.path());
  options.fixture = fixture_;
  ServerHarness harness(options);
  {
    RawFeeder feeder(harness.server().ingest_port());
    service::SessionMeta meta;
    meta.seed = test::kTestSeed + 1;  // not the embedded fixture's
    feeder.send(service::EventRecord{meta});
    EXPECT_TRUE(feeder.server_closed());
  }
  const ServerReport report = harness.stop_and_join();
  EXPECT_FALSE(report.result.has_value());
  EXPECT_GE(report.protocol_errors, 1);
}

TEST_F(NetLoopbackTest, SlowSubscriberHitsDropPolicyWithoutStallingPublish) {
  SubscriberHubOptions options;
  options.queue_capacity = 4;
  options.write_timeout_ms = 500;
  SubscriberHub hub(options);

  // Publishing into an empty room is free.
  hub.publish(static_cast<std::uint8_t>(NetFrameType::kFeedEnd), {});
  EXPECT_EQ(hub.dropped_frames(), 0);

  // A subscriber that handshakes and then never reads a byte.
  Socket mute = connect_to("127.0.0.1", hub.port(), 2000);
  write_stream_header(mute, Channel::kSubscribe, kIoMs);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (hub.subscriber_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(hub.subscriber_count(), 1u);

  // 128 quarter-MiB frames (32 MiB total) overflow the socket buffers
  // and the 4-deep queue many times over. publish() must shrug it all
  // off without ever blocking on the wedged client.
  const std::vector<std::uint8_t> fat(256u << 10, 0xab);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 128; ++i) {
    hub.publish(static_cast<std::uint8_t>(NetFrameType::kTelemetry), fat);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20'000);  // generous for TSan; the real bound is ~milliseconds
  EXPECT_GT(hub.dropped_frames(), 0);
  hub.stop();
  EXPECT_EQ(hub.total_connected(), 1);
}

TEST_F(NetLoopbackTest, SubscribersCannotPerturbTheDecisionStream) {
  test::TempFile server_log("net_subscribers.eventlog");
  test::TempFile local_log("net_subscribers_local.eventlog");
  const SessionFeed feed = make_feed(*fixture_, 2);

  ServerOptions options = loopback_options(server_log.path());
  options.subscriber_queue_capacity = 8;  // make drops plausible
  options.fixture = fixture_;  // the embedded-fixture path
  ServerHarness harness(options);
  const std::uint16_t sub_port = harness.server().subscribe_port();

  // Eight subscribers: five read everything, two disconnect after a
  // couple of frames (the mid-stream kill), one is mute until the end.
  std::atomic<int> feed_ends{0};
  std::atomic<int> frames_seen{0};
  std::atomic<bool> session_over{false};
  std::vector<std::thread> subscribers;
  for (int i = 0; i < 5; ++i) {
    subscribers.emplace_back([&] {
      try {
        Socket sock = connect_to("127.0.0.1", sub_port, 2000);
        write_stream_header(sock, Channel::kSubscribe, kIoMs);
        FrameReader reader(sock);
        while (std::optional<Frame> frame = reader.next(kIoMs)) {
          ++frames_seen;
          if (frame->type ==
              static_cast<std::uint8_t>(NetFrameType::kFeedEnd)) {
            ++feed_ends;
            break;
          }
        }
      } catch (const NetError&) {
        // A drop-policy close is fine; the asserts below are about the
        // session, not about any one subscriber's luck.
      } catch (const service::EventLogError&) {
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    subscribers.emplace_back([&] {
      try {
        Socket sock = connect_to("127.0.0.1", sub_port, 2000);
        write_stream_header(sock, Channel::kSubscribe, kIoMs);
        FrameReader reader(sock);
        (void)reader.next(kIoMs);
        (void)reader.next(kIoMs);
      } catch (const NetError&) {
      } catch (const service::EventLogError&) {
      }  // then the socket closes: the kill
    });
  }
  subscribers.emplace_back([&] {
    try {
      Socket sock = connect_to("127.0.0.1", sub_port, 2000);
      write_stream_header(sock, Channel::kSubscribe, kIoMs);
      while (!session_over.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    } catch (const NetError&) {
    }
  });

  FeedClientOptions client_options;
  client_options.port = harness.server().ingest_port();
  FeedClient client(client_options);
  (void)client.run(feed.meta, feed.ticks, feed.steps);
  const ServerReport report = harness.join();
  session_over.store(true);
  for (std::thread& t : subscribers) t.join();

  ASSERT_TRUE(report.result.has_value());
  EXPECT_EQ(report.subscribers_connected, 8);
  EXPECT_GT(frames_seen.load(), 0);
  EXPECT_GT(feed_ends.load(), 0);  // well-behaved readers got the tail

  // The headline assert: with 8 subscribers of every temperament the
  // session's log - decisions included - is byte-identical to the
  // in-process (0-subscriber) run's, and so is the RunResult.
  const core::RunResult local =
      run_in_process(*fixture_, feed, local_log.path());
  EXPECT_EQ(service::diff_run_results(*report.result, local), "");
  EXPECT_EQ(test::slurp(server_log.path()), test::slurp(local_log.path()));

  const service::RecordedSession session =
      service::read_session(server_log.path());
  EXPECT_EQ(session.decisions.size(), feed.steps.size());
}

TEST_F(NetLoopbackTest, HttpEndpointServesPrometheusText) {
  obs::MetricsRegistry registry;
  obs::Counter scrapes =
      registry.counter("cebis_test_scrapes_total", "test counter");
  scrapes.add();

  HttpMetricsOptions options;
  options.registry = &registry;
  HttpMetricsServer http(options);

  const auto request = [&](const std::string& head) {
    Socket sock = connect_to("127.0.0.1", http.port(), 2000);
    const std::string req = head + "\r\nHost: localhost\r\n\r\n";
    sock.write_all(req.data(), req.size(), kIoMs);
    std::string response;
    char buf[4096];
    for (;;) {
      std::size_t n = 0;
      try {
        n = sock.read_some(buf, sizeof(buf), kIoMs);
      } catch (const NetError&) {
        break;
      }
      if (n == 0) break;
      response.append(buf, n);
    }
    return response;
  };

  const std::string ok = request("GET /metrics HTTP/1.1");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("text/plain"), std::string::npos);
  EXPECT_NE(ok.find("cebis_test_scrapes_total"), std::string::npos);

  EXPECT_NE(request("GET /nope HTTP/1.1").find("404"), std::string::npos);
  EXPECT_NE(request("POST /metrics HTTP/1.1").find("405"), std::string::npos);
  EXPECT_EQ(http.requests_served(), 3);
  http.stop();
}

}  // namespace
}  // namespace cebis::net
