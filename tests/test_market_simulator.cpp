// Market simulator mechanics: determinism, window invariance, series
// shapes. (Statistical calibration against the paper's figures lives in
// test_market_calibration.cpp.)

#include <gtest/gtest.h>

#include <stdexcept>

#include "market/market_simulator.h"
#include "stats/descriptive.h"

namespace cebis::market {
namespace {

Period short_period() {
  const HourIndex begin = hour_at(CivilDate{2008, 6, 1});
  return Period{begin, begin + 14 * 24};
}

TEST(MarketSimulator, SeriesShapes) {
  const MarketSimulator sim(1);
  const PriceSet set = sim.generate(short_period());
  const auto& reg = HubRegistry::instance();
  EXPECT_EQ(set.rt.size(), reg.size());
  for (HubId id : reg.hourly_hubs()) {
    EXPECT_EQ(set.rt[id.index()].size(),
              static_cast<std::size_t>(short_period().hours()));
    EXPECT_EQ(set.da[id.index()].size(), set.rt[id.index()].size());
  }
  // The daily-only hub has no hourly series.
  EXPECT_TRUE(set.rt[reg.by_code("MID-C").index()].empty());
}

TEST(MarketSimulator, DeterministicAcrossInstances) {
  const MarketSimulator a(7);
  const MarketSimulator b(7);
  const PriceSet sa = a.generate(short_period());
  const PriceSet sb = b.generate(short_period());
  const HubId nyc = HubRegistry::instance().by_code("NYC");
  const auto va = sa.rt[nyc.index()].values();
  const auto vb = sb.rt[nyc.index()].values();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_DOUBLE_EQ(va[i], vb[i]);
}

TEST(MarketSimulator, SeedChangesSeries) {
  const MarketSimulator a(7);
  const MarketSimulator b(8);
  const HubId nyc = HubRegistry::instance().by_code("NYC");
  const PriceSet sa = a.generate(short_period());
  const PriceSet sb = b.generate(short_period());
  const auto va = sa.rt[nyc.index()].values();
  const auto vb = sb.rt[nyc.index()].values();
  int diff = 0;
  for (std::size_t i = 0; i < va.size(); ++i) diff += va[i] != vb[i] ? 1 : 0;
  EXPECT_GT(diff, static_cast<int>(va.size() / 2));
}

TEST(MarketSimulator, WindowInvariance) {
  // A short window must agree exactly with the same hours inside a
  // longer run - the property that makes 24-day and 39-month scenarios
  // consistent.
  const MarketSimulator sim(3);
  const Period inner = short_period();
  const Period outer{inner.begin - 30 * 24, inner.end + 10 * 24};
  const PriceSet small = sim.generate(inner);
  const PriceSet big = sim.generate(outer);
  const HubId chi = HubRegistry::instance().by_code("CHI");
  for (HourIndex h = inner.begin; h < inner.end; h += 7) {
    EXPECT_DOUBLE_EQ(small.rt_at(chi, h).value(), big.rt_at(chi, h).value());
    EXPECT_DOUBLE_EQ(small.da_at(chi, h).value(), big.da_at(chi, h).value());
  }
}

TEST(MarketSimulator, PricesWithinClamp) {
  const MarketSimulator sim(5);
  const PriceSet set = sim.generate(short_period());
  const auto& params = sim.params();
  for (HubId id : HubRegistry::instance().hourly_hubs()) {
    for (double p : set.rt[id.index()].values()) {
      EXPECT_GE(p, params.price_floor);
      EXPECT_LE(p, params.price_cap);
    }
  }
}

TEST(MarketSimulator, RejectsPrehistoricPeriod) {
  const MarketSimulator sim(1);
  EXPECT_THROW((void)sim.generate(Period{-100, 24}), std::invalid_argument);
}

TEST(MarketSimulator, FiveMinuteSeriesTracksHourly) {
  const MarketSimulator sim(9);
  const PriceSet set = sim.generate(short_period());
  const HubId nyc = HubRegistry::instance().by_code("NYC");
  const auto fm = sim.five_minute_series(nyc, set.rt[nyc.index()]);
  ASSERT_EQ(fm.size(), set.rt[nyc.index()].size() * 12);
  // Hourly means of the 5-min series stay near the hourly series.
  const auto hourly = set.rt[nyc.index()].values();
  double err = 0.0;
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    double m = 0.0;
    for (int i = 0; i < 12; ++i) m += fm[h * 12 + static_cast<std::size_t>(i)];
    m /= 12.0;
    err += std::abs(m - hourly[h]) / std::max(1.0, std::abs(hourly[h]));
  }
  EXPECT_LT(err / static_cast<double>(hourly.size()), 0.15);
}

TEST(MarketSimulator, DayAheadSmootherThanRealTime) {
  const MarketSimulator sim(11);
  const PriceSet set = sim.generate(short_period());
  const HubId nyc = HubRegistry::instance().by_code("NYC");
  const auto rt_changes = stats::first_differences(set.rt[nyc.index()].values());
  const auto da_changes = stats::first_differences(set.da[nyc.index()].values());
  EXPECT_LT(stats::stddev(da_changes), stats::stddev(rt_changes));
}

TEST(MarketSimulator, DailyDayAheadPeakForHourlyHub) {
  const MarketSimulator sim(13);
  const PriceSet set = sim.generate(short_period());
  const HubId bos = HubRegistry::instance().by_code("MA-BOS");
  const DailySeries daily = sim.daily_day_ahead_peak(set, bos);
  EXPECT_EQ(daily.values.size(), 14u);
  for (double v : daily.values) EXPECT_GT(v, 0.0);
}

TEST(MarketSimulator, NorthwestDailySeries) {
  const MarketSimulator sim(13);
  const PriceSet set = sim.generate(short_period());
  const HubId midc = HubRegistry::instance().by_code("MID-C");
  const DailySeries daily = sim.daily_day_ahead_peak(set, midc);
  EXPECT_EQ(daily.values.size(), 14u);
  for (double v : daily.values) {
    EXPECT_GT(v, 1.0);
    EXPECT_LT(v, 200.0);
  }
}

TEST(HourlySeries, SliceAndAccessors) {
  HourlySeries s(Period{10, 14}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.at(10), 1.0);
  EXPECT_DOUBLE_EQ(s.at(13), 4.0);
  EXPECT_THROW((void)s.at(14), std::out_of_range);
  const auto slice = s.slice(Period{11, 13});
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_DOUBLE_EQ(slice[0], 2.0);
  EXPECT_THROW((void)s.slice(Period{9, 12}), std::out_of_range);
  EXPECT_THROW(HourlySeries(Period{0, 2}, {1.0}), std::invalid_argument);
}

TEST(HourlySeries, DailyAverages) {
  std::vector<double> v(48, 1.0);
  for (int i = 24; i < 48; ++i) v[static_cast<std::size_t>(i)] = 3.0;
  HourlySeries s(Period{0, 48}, std::move(v));
  const auto daily = s.daily_averages();
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_DOUBLE_EQ(daily[0], 1.0);
  EXPECT_DOUBLE_EQ(daily[1], 3.0);
}

}  // namespace
}  // namespace cebis::market
