// Carbon extension (§8): dispatch mixes, intensity series, and the
// carbon-vs-cost routing trade-off.

#include <gtest/gtest.h>

#include "carbon/carbon_router.h"
#include "carbon/generation_mix.h"
#include "test_support.h"

namespace cebis::carbon {
namespace {

TEST(GenerationMix, BaseSharesSumToOne) {
  for (market::Rto rto :
       {market::Rto::kErcot, market::Rto::kCaiso, market::Rto::kPjm,
        market::Rto::kMiso, market::Rto::kNyiso, market::Rto::kIsoNe,
        market::Rto::kNonMarket}) {
    double sum = 0.0;
    for (double v : base_mix(rto)) sum += v;
    EXPECT_NEAR(sum, 1.0, test::kNumericTol) << to_string(rto);
  }
}

TEST(GenerationMix, DispatchSharesSumToOne) {
  for (double load : {0.0, 0.3, 0.7, 1.0}) {
    for (double wind : {0.0, 0.5, 1.0}) {
      double sum = 0.0;
      for (double v : dispatch(market::Rto::kPjm, load, wind)) sum += v;
      EXPECT_NEAR(sum, 1.0, test::kNumericTol);
    }
  }
}

TEST(GenerationMix, IntensityOrderingByRegion) {
  // Coal-heavy Midwest dirtier than gas California, which is dirtier
  // than the hydro Northwest.
  const double miso = mix_intensity(dispatch(market::Rto::kMiso, 0.5, 0.5));
  const double caiso = mix_intensity(dispatch(market::Rto::kCaiso, 0.5, 0.5));
  const double nw = mix_intensity(dispatch(market::Rto::kNonMarket, 0.5, 0.5));
  EXPECT_GT(miso, caiso);
  EXPECT_GT(caiso, nw);
  EXPECT_LT(nw, 300.0);
  EXPECT_GT(miso, 500.0);
}

TEST(GenerationMix, WindLowersIntensity) {
  const double calm = mix_intensity(dispatch(market::Rto::kErcot, 0.7, 0.0));
  const double windy = mix_intensity(dispatch(market::Rto::kErcot, 0.7, 1.0));
  EXPECT_LT(windy, calm);
}

TEST(GenerationMix, MarginalGasRaisesIntensityWithLoadInNuclearRegions) {
  // In nuclear/hydro-heavy regions the marginal unit is gas, so load
  // growth raises intensity.
  const double low = mix_intensity(dispatch(market::Rto::kNyiso, 0.1, 0.5));
  const double high = mix_intensity(dispatch(market::Rto::kNyiso, 1.0, 0.5));
  EXPECT_GT(high, low);
}

TEST(GenerationMix, EmissionFactors) {
  EXPECT_GT(emission_factor(Fuel::kCoal), emission_factor(Fuel::kGas));
  EXPECT_GT(emission_factor(Fuel::kGas), emission_factor(Fuel::kNuclear));
  EXPECT_LT(emission_factor(Fuel::kWind), 50.0);
}

TEST(CarbonIntensityModel, SeriesShapeAndBounds) {
  const CarbonIntensityModel model(7);
  const Period window{trace_period().begin, trace_period().begin + 48};
  const market::PriceSet set = model.generate(window);
  const auto& hubs = market::HubRegistry::instance();
  for (HubId id : hubs.hourly_hubs()) {
    const auto values = set.rt[id.index()].values();
    ASSERT_EQ(values.size(), 48u);
    for (double v : values) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1000.0);
    }
  }
}

TEST(CarbonIntensityModel, WindowInvariantAndDeterministic) {
  const CarbonIntensityModel model(7);
  const Period inner{trace_period().begin, trace_period().begin + 24};
  const Period outer{inner.begin - 48, inner.end + 24};
  const market::PriceSet a = model.generate(inner);
  const market::PriceSet b = model.generate(outer);
  const HubId chi = market::HubRegistry::instance().by_code("CHI");
  for (HourIndex h = inner.begin; h < inner.end; ++h) {
    EXPECT_DOUBLE_EQ(a.rt_at(chi, h).value(), b.rt_at(chi, h).value());
  }
}

class CarbonRoutingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new core::Fixture(core::Fixture::make(2009));
    intensity_ = new market::PriceSet(
        CarbonIntensityModel(2009).generate(study_period()));
  }
  static void TearDownTestSuite() {
    delete intensity_;
    delete fixture_;
    intensity_ = nullptr;
    fixture_ = nullptr;
  }
  static core::Fixture* fixture_;
  static market::PriceSet* intensity_;

  static core::ScenarioSpec scenario() {
    return core::ScenarioSpec{
        .config = core::PriceAwareConfig{.distance_threshold = Km{2500.0}},
        .energy = energy::optimistic_future_params(),
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
    };
  }
};

core::Fixture* CarbonRoutingTest::fixture_ = nullptr;
market::PriceSet* CarbonRoutingTest::intensity_ = nullptr;

TEST_F(CarbonRoutingTest, BlendValidation) {
  EXPECT_THROW((void)blend_objective(fixture_->prices(), *intensity_, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)blend_objective(fixture_->prices(), *intensity_, 1.1),
               std::invalid_argument);
}

TEST_F(CarbonRoutingTest, PureObjectivesOptimizeThemselves) {
  const CarbonRunSummary cost_run =
      run_blended(*fixture_, *intensity_, scenario(), 1.0);
  const CarbonRunSummary carbon_run =
      run_blended(*fixture_, *intensity_, scenario(), 0.0);
  // Routing by carbon yields no more carbon than routing by cost, and
  // vice versa for dollars.
  EXPECT_LE(carbon_run.carbon_kg, cost_run.carbon_kg * 1.001);
  EXPECT_LE(cost_run.cost_usd, carbon_run.cost_usd * 1.001);
  EXPECT_GT(carbon_run.carbon_kg, 0.0);
  EXPECT_GT(cost_run.cost_usd, 0.0);
}

TEST_F(CarbonRoutingTest, BothObjectivesBeatTheBaseline) {
  const CarbonRunSummary baseline =
      run_baseline_carbon(*fixture_, *intensity_, scenario());
  const CarbonRunSummary cost_run =
      run_blended(*fixture_, *intensity_, scenario(), 1.0);
  const CarbonRunSummary carbon_run =
      run_blended(*fixture_, *intensity_, scenario(), 0.0);
  EXPECT_LT(cost_run.cost_usd, baseline.cost_usd);
  EXPECT_LT(carbon_run.carbon_kg, baseline.carbon_kg);
}

TEST_F(CarbonRoutingTest, TradeOffCurveIsCoherent) {
  const auto curve = trade_off_curve(*fixture_, *intensity_, scenario(), 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.front().alpha, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().alpha, 1.0);
  // Ends of the curve: carbon end has the least carbon, cost end the
  // least cost.
  EXPECT_LE(curve.front().optimizer.carbon_kg,
            curve.back().optimizer.carbon_kg * 1.001);
  EXPECT_LE(curve.back().optimizer.cost_usd,
            curve.front().optimizer.cost_usd * 1.001);
  EXPECT_THROW((void)trade_off_curve(*fixture_, *intensity_, scenario(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cebis::carbon
