// Billing contracts (§7): wholesale-indexed vs flat vs provisioned.

#include <gtest/gtest.h>

#include <stdexcept>

#include "billing/contracts.h"

namespace cebis::billing {
namespace {

TEST(FlatRateContract, IgnoresSpot) {
  const FlatRateContract c(UsdPerMwh{70.0});
  EXPECT_DOUBLE_EQ(c.cost(MegawattHours{2.0}, 0, UsdPerMwh{500.0}).value(), 140.0);
  EXPECT_DOUBLE_EQ(c.cost(MegawattHours{2.0}, 0, UsdPerMwh{-10.0}).value(), 140.0);
  EXPECT_TRUE(c.consumption_sensitive());
  EXPECT_EQ(c.name(), "flat-rate");
  EXPECT_THROW(FlatRateContract(UsdPerMwh{-1.0}), std::invalid_argument);
}

TEST(WholesaleIndexedContract, TracksSpot) {
  const WholesaleIndexedContract c;
  EXPECT_DOUBLE_EQ(c.cost(MegawattHours{3.0}, 0, UsdPerMwh{40.0}).value(), 120.0);
  // Negative prices pay the consumer (paper §2.2).
  EXPECT_LT(c.cost(MegawattHours{1.0}, 0, UsdPerMwh{-20.0}).value(), 0.0);
  EXPECT_TRUE(c.consumption_sensitive());
}

TEST(WholesaleIndexedContract, RetailAdder) {
  const WholesaleIndexedContract c(UsdPerMwh{5.0});
  EXPECT_DOUBLE_EQ(c.cost(MegawattHours{2.0}, 0, UsdPerMwh{40.0}).value(), 90.0);
}

TEST(ProvisionedPowerContract, IndependentOfConsumption) {
  // 100 kW provisioned at $150/kW-month.
  const ProvisionedPowerContract c(Watts{100e3}, Usd{150.0});
  const Usd hourly = c.cost(MegawattHours{0.0}, 0, UsdPerMwh{60.0});
  EXPECT_DOUBLE_EQ(
      hourly.value(),
      c.cost(MegawattHours{50.0}, 0, UsdPerMwh{600.0}).value());
  // Monthly total = 100 kW * $150 = $15000.
  EXPECT_NEAR(hourly.value() * 30.44 * 24.0, 15000.0, 1.0);
  EXPECT_FALSE(c.consumption_sensitive());
  EXPECT_THROW(ProvisionedPowerContract(Watts{-1.0}, Usd{1.0}),
               std::invalid_argument);
}

TEST(Contracts, PolymorphicUse) {
  // The paper's point: price-aware routing only pays off under
  // consumption-sensitive billing.
  std::vector<std::unique_ptr<Contract>> contracts;
  contracts.push_back(std::make_unique<FlatRateContract>(UsdPerMwh{60.0}));
  contracts.push_back(std::make_unique<WholesaleIndexedContract>());
  contracts.push_back(
      std::make_unique<ProvisionedPowerContract>(Watts{10e3}, Usd{150.0}));
  int sensitive = 0;
  for (const auto& c : contracts) {
    if (c->consumption_sensitive()) ++sensitive;
  }
  EXPECT_EQ(sensitive, 2);
}

}  // namespace
}  // namespace cebis::billing
