// End-to-end integration: the full fixture and the paper's headline
// qualitative results (§6.2/§6.3) as properties, expressed through the
// ScenarioSpec pipeline (the deprecated fixed-function shims keep their
// one equivalence test in test_scenario_api.cpp).

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_support.h"

namespace cebis::core {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = new Fixture(Fixture::make(2009)); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static Fixture* fixture_;

  static ScenarioSpec base_spec(double threshold_km = 1500.0) {
    return ScenarioSpec{
        .router = "price-aware",
        .config = PriceAwareConfig{.distance_threshold = Km{threshold_km}},
        .energy = energy::optimistic_future_params(),
        .workload = WorkloadKind::kTrace24Day,
    };
  }
};

Fixture* ExperimentTest::fixture_ = nullptr;

TEST_F(ExperimentTest, FixtureShapes) {
  EXPECT_EQ(fixture_->clusters.size(), traffic::kClusterCount);
  EXPECT_EQ(fixture_->prices().period.hours(), study_period().hours());
  EXPECT_EQ(fixture_->trace.period().hours(), trace_period().hours());
  EXPECT_EQ(fixture_->distances.site_count(), traffic::kClusterCount);
}

TEST_F(ExperimentTest, CheapestClusterIsChicago) {
  // Chicago has the lowest mean price of the nine traffic hubs (Fig 6).
  const std::size_t c = fixture_->cheapest_cluster();
  EXPECT_EQ(fixture_->clusters[c].label, "IL");
}

TEST_F(ExperimentTest, PriceAwareSavesMoney) {
  ScenarioSpec s = base_spec();
  s.enforce_p95 = false;
  const SavingsReport relax = scenario_savings(*fixture_, s);
  EXPECT_GT(relax.savings_percent, 10.0);
  EXPECT_LT(relax.savings_percent, 50.0);

  s.enforce_p95 = true;
  const SavingsReport follow = scenario_savings(*fixture_, s);
  // §6.2: constraints reduce but do not eliminate savings.
  EXPECT_GT(follow.savings_percent, 2.0);
  EXPECT_LT(follow.savings_percent, relax.savings_percent);
}

TEST_F(ExperimentTest, SavingsShrinkWithInelasticity) {
  // Fig 15's monotone structure across energy models.
  double prev = 1e9;
  for (const auto& scn : energy::fig15_scenarios()) {
    ScenarioSpec s = base_spec();
    s.energy.idle_fraction = scn.idle_fraction;
    s.energy.pue = scn.pue;
    s.enforce_p95 = false;
    const SavingsReport r = scenario_savings(*fixture_, s);
    EXPECT_LE(r.savings_percent, prev + 1.0) << scn.label;  // small tolerance
    EXPECT_GE(r.savings_percent, 0.0) << scn.label;
    prev = r.savings_percent;
  }
}

TEST_F(ExperimentTest, GoogleElasticityMatchesPaperBand) {
  // §6.2: "at Google's published elasticity level (65% idle, 1.3 PUE),
  // the maximum savings have dropped to 5%" (relaxed); with 95/5
  // constraints the intro's "at least 2%" bound applies loosely.
  ScenarioSpec s = base_spec();
  s.energy = energy::google_params();
  s.enforce_p95 = false;
  const SavingsReport relax = scenario_savings(*fixture_, s);
  EXPECT_GT(relax.savings_percent, 2.0);
  EXPECT_LT(relax.savings_percent, 9.0);

  s.enforce_p95 = true;
  const SavingsReport follow = scenario_savings(*fixture_, s);
  EXPECT_GT(follow.savings_percent, 0.5);
  EXPECT_LT(follow.savings_percent, relax.savings_percent);
}

TEST_F(ExperimentTest, WiderThresholdNeverLosesMoney) {
  // Fig 16's monotone cost decrease.
  double prev = 1e9;
  for (double km : {0.0, 500.0, 1500.0, 2500.0}) {
    ScenarioSpec s = base_spec(km);
    s.enforce_p95 = false;
    const RunResult r = run_scenario(*fixture_, s);
    EXPECT_LE(r.total_cost.value(), prev * 1.01) << km;
    prev = r.total_cost.value();
  }
}

TEST_F(ExperimentTest, DistancesGrowWithThreshold) {
  // Fig 17: mean and p99 distances rise with the threshold.
  ScenarioSpec s = base_spec(0.0);
  s.enforce_p95 = false;
  const RunResult tight = run_scenario(*fixture_, s);
  s.config = PriceAwareConfig{.distance_threshold = Km{2500.0}};
  const RunResult wide = run_scenario(*fixture_, s);
  EXPECT_GE(wide.mean_distance_km, tight.mean_distance_km);
  EXPECT_GE(wide.p99_distance_km, tight.p99_distance_km);
}

TEST_F(ExperimentTest, ConstrainedRunRespects95_5) {
  // The realized p95 must not exceed the baseline reference.
  ScenarioSpec s = base_spec();
  s.enforce_p95 = true;
  const RunResult r = run_scenario(*fixture_, s);
  for (std::size_t c = 0; c < fixture_->clusters.size(); ++c) {
    EXPECT_LE(r.realized_p95[c],
              fixture_->clusters[c].p95_reference.value() * 1.02)
        << fixture_->clusters[c].label;
  }
  EXPECT_EQ(r.overflow_steps, 0);
}

TEST_F(ExperimentTest, TrafficConservedAcrossRouters) {
  ScenarioSpec opt = base_spec();
  ScenarioSpec base = opt;
  base.router = "baseline";
  base.config = std::monostate{};
  ScenarioSpec closest = base;
  closest.router = "closest";
  const ScenarioSpec specs[] = {base, opt, closest};
  const auto runs = run_scenarios(*fixture_, specs);
  EXPECT_NEAR(runs[0].hit_hours, runs[1].hit_hours, 1e-3);
  EXPECT_NEAR(runs[0].hit_hours, runs[2].hit_hours, 1e-3);
}

TEST_F(ExperimentTest, PerClusterDeltasSumToTotalSavings) {
  ScenarioSpec s = base_spec();
  s.enforce_p95 = true;
  const SavingsReport r = scenario_savings(*fixture_, s);
  double sum = 0.0;
  for (double d : r.per_cluster_delta_percent) sum += d;
  EXPECT_NEAR(sum, -r.savings_percent, test::kSumTol);
}

TEST_F(ExperimentTest, NycShedsTheMostCost) {
  // Fig 19: the largest per-cluster reduction is at NYC (highest peak
  // prices).
  ScenarioSpec s = base_spec(2000.0);
  s.enforce_p95 = true;
  const SavingsReport r = scenario_savings(*fixture_, s);
  std::size_t ny = 0;
  for (std::size_t c = 0; c < fixture_->clusters.size(); ++c) {
    if (fixture_->clusters[c].label == "NY") ny = c;
  }
  // NY must rank within the two deepest reductions (sampling noise can
  // let one other expensive hub edge it out slightly).
  int deeper = 0;
  for (std::size_t c = 0; c < fixture_->clusters.size(); ++c) {
    if (r.per_cluster_delta_percent[c] <
        r.per_cluster_delta_percent[ny] - test::kNumericTol) {
      ++deeper;
    }
  }
  EXPECT_LE(deeper, 1);
  EXPECT_LT(r.per_cluster_delta_percent[ny], 0.0);
}

TEST_F(ExperimentTest, DelayIncreasesCost) {
  // Fig 20: reacting to stale prices costs more; immediate reaction is
  // the cheapest.
  ScenarioSpec s = base_spec();
  s.energy = energy::google_params();
  s.enforce_p95 = false;
  s.delay_hours = 0;
  const double fresh = run_scenario(*fixture_, s).total_cost.value();
  s.delay_hours = 1;
  const double one = run_scenario(*fixture_, s).total_cost.value();
  s.delay_hours = 12;
  const double twelve = run_scenario(*fixture_, s).total_cost.value();
  EXPECT_LE(fresh, one + test::kSumTol);
  EXPECT_LT(one, twelve);
}

TEST_F(ExperimentTest, SyntheticDynamicBeatsStatic) {
  // §6.3 "Dynamic Beats Static": with relaxed constraints and a wide
  // threshold, the dynamic optimizer undercuts relocating every server
  // to the cheapest market.
  ScenarioSpec s = base_spec(2500.0);
  s.workload = WorkloadKind::kSynthetic39Month;
  s.enforce_p95 = false;
  ScenarioSpec base = s;
  base.router = "baseline";
  base.config = std::monostate{};
  ScenarioSpec st = base;
  st.router = "static-cheapest";
  const ScenarioSpec specs[] = {base, s, st};
  const auto runs = run_scenarios(*fixture_, specs);
  const double dyn_norm = runs[1].total_cost.value() / runs[0].total_cost.value();
  const double static_norm =
      runs[2].total_cost.value() / runs[0].total_cost.value();
  EXPECT_LT(dyn_norm, static_norm);
  EXPECT_LT(dyn_norm, 0.8);     // large savings at wide thresholds
  EXPECT_GT(static_norm, 0.4);  // static is good but not free
}

}  // namespace
}  // namespace cebis::core
