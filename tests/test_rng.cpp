// Deterministic RNG: same seed same stream, split independence, and
// sanity on the distribution shapes the market model relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace cebis::stats {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitIsStableAndIndependent) {
  const Rng parent(7);
  Rng c1 = parent.split(3);
  Rng c1_again = parent.split(3);
  Rng c2 = parent.split(4);
  EXPECT_DOUBLE_EQ(c1.uniform(), c1_again.uniform());
  // Sibling streams should not be identical.
  Rng c1b = parent.split(3);
  (void)c1b.uniform();
  EXPECT_NE(c1b.uniform(), c2.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(10.0, 20.0);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 20.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> xs;
  xs.reserve(20000);
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(mean(xs), 5.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ParetoSupportAndTail) {
  Rng rng(17);
  std::vector<double> xs;
  int above_double = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.pareto(20.0, 2.0);
    EXPECT_GE(x, 20.0);
    if (x > 40.0) ++above_double;
    xs.push_back(x);
  }
  // P(X > 2*xm) = (1/2)^alpha = 0.25 for alpha = 2.
  EXPECT_NEAR(above_double / 20000.0, 0.25, 0.02);
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / 10000.0, 3.5, 0.1);
}

TEST(Rng, IndexInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, SplitmixAvalanche) {
  // Neighbouring inputs should produce wildly different outputs.
  const std::uint64_t a = splitmix64(1);
  const std::uint64_t b = splitmix64(2);
  EXPECT_NE(a, b);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

}  // namespace
}  // namespace cebis::stats
