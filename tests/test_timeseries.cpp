// Time-series transforms: window averaging (Fig 5), differential runs
// (Fig 13) and grouped quartiles (Fig 11/12).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/timeseries.h"

namespace cebis::stats {
namespace {

TEST(WindowAverage, BasicWindows) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const std::vector<double> w2 = window_average(xs, 2);
  ASSERT_EQ(w2.size(), 3u);  // trailing element dropped
  EXPECT_DOUBLE_EQ(w2[0], 1.5);
  EXPECT_DOUBLE_EQ(w2[1], 3.5);
  EXPECT_DOUBLE_EQ(w2[2], 5.5);
  EXPECT_EQ(window_average(xs, 1).size(), xs.size());
  EXPECT_THROW((void)window_average(xs, 0), std::invalid_argument);
}

TEST(WindowAverage, SmoothingReducesVariance) {
  // The Fig 5 effect: averaging windows shrink the std-dev.
  std::vector<double> xs;
  for (int i = 0; i < 1024; ++i) xs.push_back(i % 2 == 0 ? 10.0 : -10.0);
  const auto w = window_average(xs, 4);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Differences, ElementWise) {
  const std::vector<double> a = {5.0, 6.0};
  const std::vector<double> b = {1.0, 9.0};
  const auto d = differences(a, b);
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], -3.0);
  EXPECT_THROW((void)differences(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DifferentialRuns, SplitsOnSignAndThreshold) {
  // +8 +8 | below | -7 -7 -7 | below  -> two runs.
  const std::vector<double> diff = {8.0, 8.0, 2.0, -7.0, -7.0, -7.0, 1.0};
  const auto runs = differential_runs(diff, 5.0);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].sign, 1);
  EXPECT_EQ(runs[0].length, 2u);
  EXPECT_EQ(runs[0].start, 0u);
  EXPECT_EQ(runs[1].sign, -1);
  EXPECT_EQ(runs[1].length, 3u);
  EXPECT_EQ(runs[1].start, 3u);
}

TEST(DifferentialRuns, SignReversalEndsRun) {
  const std::vector<double> diff = {10.0, -10.0, 10.0};
  const auto runs = differential_runs(diff, 5.0);
  ASSERT_EQ(runs.size(), 3u);
  for (const auto& r : runs) EXPECT_EQ(r.length, 1u);
}

TEST(DifferentialRuns, EmptyWhenAllBelowThreshold) {
  const std::vector<double> diff = {1.0, -2.0, 3.0};
  EXPECT_TRUE(differential_runs(diff, 5.0).empty());
  EXPECT_THROW((void)differential_runs(diff, -1.0), std::invalid_argument);
}

TEST(DurationFractions, TimeWeighted) {
  // One 1-hour run and one 3-hour run: fractions 0.25 / 0.75 of the
  // favoured time.
  std::vector<DifferentialRun> runs = {{0, 1, 1}, {5, 3, -1}};
  const auto frac = duration_time_fractions(runs, 5);
  ASSERT_EQ(frac.size(), 5u);
  EXPECT_DOUBLE_EQ(frac[0], 0.25);
  EXPECT_DOUBLE_EQ(frac[2], 0.75);
  EXPECT_DOUBLE_EQ(frac[1] + frac[3] + frac[4], 0.0);
}

TEST(DurationFractions, LongRunsClampIntoLastBucket) {
  std::vector<DifferentialRun> runs = {{0, 40, 1}};
  const auto frac = duration_time_fractions(runs, 10);
  EXPECT_DOUBLE_EQ(frac[9], 1.0);
  EXPECT_THROW((void)duration_time_fractions(runs, 0), std::invalid_argument);
}

TEST(GroupedQuartiles, GroupsByKey) {
  std::vector<double> xs;
  for (int i = 0; i < 48; ++i) xs.push_back(static_cast<double>(i));
  // Key = parity: evens in group 0, odds in group 1.
  const auto groups = grouped_quartiles(
      xs, [](std::size_t i) { return static_cast<int>(i % 2); }, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].count, 24u);
  EXPECT_DOUBLE_EQ(groups[0].q.q50, 23.0);  // median of evens 0..46
  EXPECT_DOUBLE_EQ(groups[1].q.q50, 24.0);  // median of odds 1..47
}

TEST(GroupedQuartiles, NegativeKeysExcluded) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto groups = grouped_quartiles(
      xs, [](std::size_t i) { return i == 0 ? -1 : 0; }, 1);
  EXPECT_EQ(groups[0].count, 2u);
  EXPECT_THROW(
      (void)grouped_quartiles(xs, [](std::size_t) { return 0; }, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace cebis::stats
