// Lazy price-history materialization (ROADMAP scale target): a fixture
// no longer generates the 39-month history eagerly. Short-window
// scenarios must only pay for the hours they replay, growth must be
// monotone with stable addresses, and - the guard this suite exists
// for - every result must be byte-identical to the eager path.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "market/lazy_price_history.h"
#include "test_support.h"

namespace cebis::core {
namespace {

ScenarioSpec trace_spec() {
  return ScenarioSpec{
      .router = "price-aware",
      .config = PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_cost.value(), b.total_cost.value());
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value());
  EXPECT_EQ(a.mean_distance_km, b.mean_distance_km);
  EXPECT_EQ(a.hit_hours, b.hit_hours);
  ASSERT_EQ(a.cluster_cost.size(), b.cluster_cost.size());
  for (std::size_t c = 0; c < a.cluster_cost.size(); ++c) {
    EXPECT_EQ(a.cluster_cost[c], b.cluster_cost[c]);
    EXPECT_EQ(a.cluster_energy[c], b.cluster_energy[c]);
  }
}

TEST(LazyPriceHistory, WindowsAgreeWithTheFullSetByteForByte) {
  // The generator invariant the whole satellite rests on: a window's
  // prices equal the same hours of the full study set, exactly.
  market::LazyPriceHistory lazy(test::kTestSeed);
  const Period window{trace_period().begin - 48, trace_period().end};
  const market::PriceSet& small = lazy.cover(window);
  EXPECT_EQ(small.period, window);

  market::LazyPriceHistory eager(test::kTestSeed);
  const market::PriceSet& full = eager.full();
  ASSERT_EQ(full.period, study_period());
  for (std::size_t hub = 0; hub < full.rt.size(); ++hub) {
    if (full.rt[hub].empty()) {
      EXPECT_TRUE(small.rt[hub].empty());
      continue;
    }
    for (HourIndex h = window.begin; h < window.end; ++h) {
      ASSERT_EQ(small.rt[hub].at(h), full.rt[hub].at(h)) << hub << " " << h;
      ASSERT_EQ(small.da[hub].at(h), full.da[hub].at(h)) << hub << " " << h;
    }
  }
}

TEST(LazyPriceHistory, GrowsMonotonicallyWithStableAddresses) {
  market::LazyPriceHistory lazy(test::kTestSeed);
  EXPECT_EQ(lazy.materialized_hours(), 0);
  EXPECT_EQ(lazy.generations(), 0u);

  const market::PriceSet& first = lazy.cover(Period{100, 200});
  EXPECT_EQ(lazy.generations(), 1u);
  EXPECT_EQ(lazy.materialized_hours(), 100);
  // A covered request reuses the current set.
  EXPECT_EQ(&lazy.cover(Period{120, 180}), &first);
  EXPECT_EQ(lazy.generations(), 1u);

  // Widening generates the union window; the old set stays valid.
  const market::PriceSet& second = lazy.cover(Period{150, 400});
  EXPECT_EQ(lazy.generations(), 2u);
  EXPECT_EQ(second.period, (Period{100, 400}));
  EXPECT_EQ(first.period, (Period{100, 200}));
  for (HourIndex h = 100; h < 200; ++h) {
    ASSERT_EQ(first.rt[0].at(h), second.rt[0].at(h));
  }

  // Requests beyond the study period are clamped to it.
  const Period study = study_period();
  const market::PriceSet& wide =
      lazy.cover(Period{study.begin - 100, study.end + 100});
  EXPECT_EQ(wide.period, study);
}

TEST(LazyPriceHistory, PinReplacesTheHistory) {
  market::LazyPriceHistory lazy(test::kTestSeed);
  market::PriceSet pinned;
  pinned.period = Period{0, 10};
  lazy.pin(std::move(pinned));
  // Even a wider request returns the pinned set (the ablation contract:
  // the caller took over price generation entirely).
  EXPECT_EQ(&lazy.cover(Period{0, 5000}), &lazy.cover(Period{0, 1}));
  EXPECT_EQ(lazy.materialized_hours(), 10);
}

TEST(LazyFixture, TraceScenarioOnlyMaterializesTheTraceWindow) {
  const Fixture fixture = Fixture::make(test::kTestSeed);
  EXPECT_EQ(fixture.price_history->generations(), 0u);

  (void)run_scenario(fixture, trace_spec());
  // 24-day window + the 1h routing delay margin, not 39 months.
  EXPECT_EQ(fixture.price_history->generations(), 1u);
  EXPECT_EQ(fixture.price_history->materialized_hours(),
            trace_period().hours() + 1);
  EXPECT_LT(fixture.price_history->materialized_hours(),
            study_period().hours() / 10);
}

TEST(LazyFixture, ResultsAreByteIdenticalToTheEagerPath) {
  // Lazy fixture: runs the trace scenario off a window materialization,
  // then a synthetic scenario that forces widening.
  const Fixture lazy = Fixture::make(test::kTestSeed);
  const RunResult lazy_trace = run_scenario(lazy, trace_spec());

  ScenarioSpec synth = trace_spec();
  synth.workload = WorkloadKind::kSynthetic39Month;
  const RunResult lazy_synth = run_scenario(lazy, synth);
  EXPECT_GE(lazy.price_history->generations(), 2u);

  // Eager fixture: materialize the full history first (what
  // Fixture::make used to do unconditionally), then run the same specs.
  const Fixture eager = Fixture::make(test::kTestSeed);
  (void)eager.prices();
  EXPECT_EQ(eager.price_history->materialized_hours(), study_period().hours());
  const RunResult eager_trace = run_scenario(eager, trace_spec());
  const RunResult eager_synth = run_scenario(eager, synth);

  expect_identical(lazy_trace, eager_trace);
  expect_identical(lazy_synth, eager_synth);
}

TEST(LazyFixture, CheapestClusterDoesNotRetainTheFullHistory) {
  // The static-relocation target is *defined over the full study
  // period* (all 28464 hours feed the per-hub means), but resolving it
  // used to materialize - and retain - the entire 39-month history,
  // defeating the lazy fixture for any sweep that mentions
  // "static-cheapest". The means are now streamed from a scratch set
  // that is discarded: same argmin, no retained hours.
  const Fixture fixture = Fixture::make(test::kTestSeed);
  const std::size_t cheapest = fixture.cheapest_cluster();
  EXPECT_EQ(fixture.clusters[cheapest].label, "IL");
  EXPECT_EQ(fixture.price_history->materialized_hours(), 0);
  EXPECT_EQ(fixture.price_history->generations(), 0u);

  // Memoized at both layers: repeated calls re-read neither the study
  // period (LazyPriceHistory::study_rt_means) nor the means (Fixture).
  EXPECT_EQ(fixture.cheapest_cluster(), cheapest);
  EXPECT_EQ(fixture.cheapest_cluster(), cheapest);
  EXPECT_EQ(fixture.price_history->study_mean_passes(), 1u);
}

TEST(LazyFixture, StaticCheapestSweepOnlyMaterializesTheTraceWindow) {
  // End-to-end version of the guard above: a 24-day sweep through the
  // router that needs the relocation target must still only pay for the
  // trace window (+1h delay margin), not the full study period.
  const Fixture fixture = Fixture::make(test::kTestSeed);
  ScenarioSpec spec = trace_spec();
  spec.router = "static-cheapest";
  spec.config = std::monostate{};
  const std::vector<ScenarioSpec> specs{spec};
  (void)run_scenarios(fixture, specs, SweepOptions{.threads = 1});
  EXPECT_EQ(fixture.price_history->materialized_hours(),
            trace_period().hours() + 1);
  EXPECT_LT(fixture.price_history->materialized_hours(),
            study_period().hours() / 10);
  EXPECT_EQ(fixture.price_history->study_mean_passes(), 1u);
}

}  // namespace
}  // namespace cebis::core
