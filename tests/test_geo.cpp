// Geography: haversine against known city distances (the paper's
// distance anchors: Boston-Alexandria ~650 km, Boston-Chicago ~1400 km)
// and the population-weighted distance model.

#include <gtest/gtest.h>

#include <stdexcept>

#include "geo/distance_model.h"
#include "geo/latlon.h"
#include "geo/us_states.h"
#include "test_support.h"

namespace cebis::geo {
namespace {

constexpr LatLon kBoston{42.36, -71.06};
constexpr LatLon kChicago{41.88, -87.63};
constexpr LatLon kAlexandria{38.80, -77.05};
constexpr LatLon kLosAngeles{34.05, -118.24};
constexpr LatLon kNewYork{40.71, -74.01};

TEST(Haversine, ZeroForSamePoint) {
  EXPECT_NEAR(haversine(kBoston, kBoston).value(), 0.0, test::kNumericTol);
}

TEST(Haversine, PaperAnchors) {
  // §6.2: "the distance between Boston and Alexandria in Virginia is
  // about 650km"; "the distance between Boston and Chicago is about
  // 1400km".
  EXPECT_NEAR(haversine(kBoston, kAlexandria).value(), 650.0, 40.0);
  EXPECT_NEAR(haversine(kBoston, kChicago).value(), 1400.0, 60.0);
}

TEST(Haversine, CrossCountry) {
  const double nyla = haversine(kNewYork, kLosAngeles).value();
  EXPECT_NEAR(nyla, 3940.0, 80.0);
}

TEST(Haversine, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine(kBoston, kChicago).value(),
                   haversine(kChicago, kBoston).value());
}

TEST(WeightedDistance, CollapsesToHaversineForSinglePoint) {
  const auto& states = StateRegistry::instance();
  const StateId dc = states.by_code("DC");
  ASSERT_TRUE(dc.valid());
  const StateInfo& info = states.info(dc);
  ASSERT_EQ(info.points.size(), 1u);
  EXPECT_NEAR(weighted_distance(info, kBoston).value(),
              haversine(info.points[0].location, kBoston).value(), test::kNumericTol);
}

TEST(WeightedDistance, BetweenMinAndMaxPointDistance) {
  const auto& states = StateRegistry::instance();
  const StateId ca = states.by_code("CA");
  const StateInfo& info = states.info(ca);
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& p : info.points) {
    const double d = haversine(p.location, kNewYork).value();
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  const double wd = weighted_distance(info, kNewYork).value();
  EXPECT_GE(wd, lo);
  EXPECT_LE(wd, hi);
}

class DistanceModelTest : public ::testing::Test {
 protected:
  DistanceModelTest()
      : sites_{kBoston, kChicago, kLosAngeles},
        model_(StateRegistry::instance().all(), sites_) {}

  std::vector<LatLon> sites_;
  DistanceModel model_;
};

TEST_F(DistanceModelTest, Dimensions) {
  EXPECT_EQ(model_.state_count(), StateRegistry::instance().size());
  EXPECT_EQ(model_.site_count(), 3u);
}

TEST_F(DistanceModelTest, ClosestSiteMakesSense) {
  const auto& states = StateRegistry::instance();
  EXPECT_EQ(model_.closest_site(states.by_code("MA")), 0u);  // Boston
  EXPECT_EQ(model_.closest_site(states.by_code("IL")), 1u);  // Chicago
  EXPECT_EQ(model_.closest_site(states.by_code("CA")), 2u);  // LA
  EXPECT_EQ(model_.closest_site(states.by_code("WI")), 1u);
}

TEST_F(DistanceModelTest, SitesWithinSortedAndFiltered) {
  const auto& states = StateRegistry::instance();
  const StateId ma = states.by_code("MA");
  const auto near = model_.sites_within(ma, Km{500.0});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
  const auto all = model_.sites_within(ma, Km{10000.0});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LE(model_.distance(ma, all[0]).value(), model_.distance(ma, all[1]).value());
  EXPECT_LE(model_.distance(ma, all[1]).value(), model_.distance(ma, all[2]).value());
}

TEST_F(DistanceModelTest, Errors) {
  EXPECT_THROW((void)model_.distance(StateId::invalid(), 0), std::out_of_range);
  EXPECT_THROW((void)model_.distance(StateId{0}, 99), std::out_of_range);
  EXPECT_THROW((void)model_.closest_site(StateId::invalid()), std::out_of_range);
  EXPECT_THROW(DistanceModel(StateRegistry::instance().all(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cebis::geo
