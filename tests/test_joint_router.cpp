// The §8 joint-objective router: limiting behaviour at the ends of the
// lambda sweep, penalty mechanics, and constraint handling.

#include <gtest/gtest.h>

#include "core/joint_router.h"
#include "geo/distance_model.h"
#include "test_support.h"

namespace cebis::core {
namespace {

geo::LatLon kBoston{42.36, -71.06};
geo::LatLon kChicago{41.88, -87.63};
geo::LatLon kLosAngeles{34.05, -118.24};

class JointRouterTest : public ::testing::Test {
 protected:
  JointRouterTest() {
    states_.push_back(make_state("A", kBoston));
    sites_ = {kBoston, kChicago, kLosAngeles};
    distances_ = std::make_unique<geo::DistanceModel>(states_, sites_);
  }

  static geo::StateInfo make_state(std::string_view code, geo::LatLon at) {
    geo::StateInfo s;
    s.code = code;
    s.name = code;
    s.population = 1e6;
    s.centroid = at;
    s.points = {geo::PopPoint{at, 1.0}};
    return s;
  }

  Allocation route(double lambda) {
    JointObjectiveConfig cfg;
    cfg.lambda_usd_per_mwh_km = lambda;
    JointObjectiveRouter router(*distances_, 3, cfg);
    Allocation out(1, 3);
    RoutingContext ctx;
    ctx.demand = demand_;
    ctx.price = price_;
    ctx.capacity = capacity_;
    router.route(ctx, out);
    return out;
  }

  std::vector<geo::StateInfo> states_;
  std::vector<geo::LatLon> sites_;
  std::unique_ptr<geo::DistanceModel> distances_;
  std::vector<double> demand_ = {100.0};
  std::vector<double> price_ = {60.0, 40.0, 20.0};
  std::vector<double> capacity_ = {1000.0, 1000.0, 1000.0};
};

TEST_F(JointRouterTest, ZeroLambdaChasesCheapest) {
  const Allocation out = route(0.0);
  EXPECT_DOUBLE_EQ(out.hits(0, 2), 100.0);  // LA: $20
}

TEST_F(JointRouterTest, HugeLambdaStaysHome) {
  const Allocation out = route(10.0);
  EXPECT_DOUBLE_EQ(out.hits(0, 0), 100.0);  // Boston despite $60
}

TEST_F(JointRouterTest, IntermediateLambdaPicksRegionalCompromise) {
  // Chicago (~1360 km, $40) should win when LA's extra ~2800 km costs
  // more than its $20 price edge but Chicago's ~1260 penalized km cost
  // less than its $20 edge over Boston.
  const Allocation out = route(0.012);
  EXPECT_DOUBLE_EQ(out.hits(0, 1), 100.0);
}

TEST_F(JointRouterTest, FreeRadiusExemptsNearbyClusters) {
  JointObjectiveConfig cfg;
  cfg.lambda_usd_per_mwh_km = 1.0;  // prohibitive beyond the free radius
  cfg.free_km = Km{2000.0};         // ...but Chicago is inside it
  JointObjectiveRouter router(*distances_, 3, cfg);
  Allocation out(1, 3);
  RoutingContext ctx;
  ctx.demand = demand_;
  ctx.price = price_;
  ctx.capacity = capacity_;
  router.route(ctx, out);
  EXPECT_DOUBLE_EQ(out.hits(0, 1), 100.0);  // cheapest within the free radius
}

TEST_F(JointRouterTest, SpillsOnCapacityInObjectiveOrder) {
  capacity_ = {1000.0, 1000.0, 30.0};
  const Allocation out = route(0.0);
  EXPECT_DOUBLE_EQ(out.hits(0, 2), 30.0);   // LA fills
  EXPECT_DOUBLE_EQ(out.hits(0, 1), 70.0);   // Chicago next-cheapest
}

TEST_F(JointRouterTest, RespectsP95Limits) {
  std::vector<double> p95 = {1000.0, 1000.0, 10.0};
  std::vector<std::uint8_t> burst = {0, 0, 0};
  JointObjectiveConfig cfg;
  JointObjectiveRouter router(*distances_, 3, cfg);
  Allocation out(1, 3);
  RoutingContext ctx;
  ctx.demand = demand_;
  ctx.price = price_;
  ctx.capacity = capacity_;
  ctx.p95_limit = p95;
  ctx.can_burst = burst;
  router.route(ctx, out);
  EXPECT_LE(out.cluster_total(2), 10.0 + test::kNumericTol);
  double total = 0.0;
  for (std::size_t c = 0; c < 3; ++c) total += out.cluster_total(c);
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST_F(JointRouterTest, Validation) {
  EXPECT_THROW(JointObjectiveRouter(*distances_, 0, JointObjectiveConfig{}),
               std::invalid_argument);
  JointObjectiveConfig bad;
  bad.lambda_usd_per_mwh_km = -1.0;
  EXPECT_THROW(JointObjectiveRouter(*distances_, 3, bad), std::invalid_argument);

  JointObjectiveRouter router(*distances_, 3, JointObjectiveConfig{});
  Allocation out(1, 3);
  RoutingContext ctx;
  ctx.demand = std::vector<double>{1.0, 2.0};  // wrong state count
  ctx.price = price_;
  ctx.capacity = capacity_;
  EXPECT_THROW(router.route(ctx, out), std::invalid_argument);
}

/// Frontier property: cost is monotone non-decreasing in lambda, mean
/// distance monotone non-increasing (up to ties).
class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, CostRisesDistanceFallsWithLambda) {
  std::vector<geo::StateInfo> states;
  states.push_back([] {
    geo::StateInfo s;
    s.code = "A";
    s.centroid = kBoston;
    s.points = {geo::PopPoint{kBoston, 1.0}};
    return s;
  }());
  std::vector<geo::LatLon> sites = {kBoston, kChicago, kLosAngeles};
  geo::DistanceModel dm(states, sites);
  const std::vector<double> demand = {100.0};
  const std::vector<double> price = {60.0, 40.0, 20.0};
  const std::vector<double> capacity = {1000.0, 1000.0, 1000.0};

  auto run = [&](double lambda) {
    JointObjectiveConfig cfg;
    cfg.lambda_usd_per_mwh_km = lambda;
    JointObjectiveRouter router(dm, 3, cfg);
    Allocation out(1, 3);
    RoutingContext ctx;
    ctx.demand = demand;
    ctx.price = price;
    ctx.capacity = capacity;
    router.route(ctx, out);
    double cost = 0.0;
    double dist = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      cost += out.cluster_total(c) * price[c];
      dist += out.cluster_total(c) * dm.distance(StateId{0}, c).value();
    }
    return std::pair{cost, dist};
  };
  const auto [cost_lo, dist_lo] = run(GetParam());
  const auto [cost_hi, dist_hi] = run(GetParam() * 2.0 + 0.001);
  EXPECT_GE(cost_hi, cost_lo - test::kNumericTol);
  EXPECT_LE(dist_hi, dist_lo + test::kNumericTol);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(0.0, 0.002, 0.005, 0.01, 0.02, 0.05));

}  // namespace
}  // namespace cebis::core
