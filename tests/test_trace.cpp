// TrafficTrace container semantics.

#include <gtest/gtest.h>

#include <stdexcept>

#include "traffic/trace.h"

namespace cebis::traffic {
namespace {

TEST(TrafficTrace, Dimensions) {
  const TrafficTrace t(Period{0, 24}, 51);
  EXPECT_EQ(t.steps(), 24 * 12);
  EXPECT_EQ(t.state_count(), 51u);
  EXPECT_EQ(t.hour_of(0), 0);
  EXPECT_EQ(t.hour_of(11), 0);
  EXPECT_EQ(t.hour_of(12), 1);
}

TEST(TrafficTrace, SetAndGet) {
  TrafficTrace t(Period{0, 1}, 3);
  t.set_hits(0, StateId{1}, HitsPerSec{42.0});
  EXPECT_DOUBLE_EQ(t.hits(0, StateId{1}).value(), 42.0);
  EXPECT_DOUBLE_EQ(t.hits(0, StateId{0}).value(), 0.0);
}

TEST(TrafficTrace, Totals) {
  TrafficTrace t(Period{0, 1}, 2);
  t.set_hits(3, StateId{0}, HitsPerSec{10.0});
  t.set_hits(3, StateId{1}, HitsPerSec{20.0});
  t.set_world(3, WorldRegion::kEurope, HitsPerSec{5.0});
  t.set_world(3, WorldRegion::kAsiaPacific, HitsPerSec{2.0});
  EXPECT_DOUBLE_EQ(t.us_total(3).value(), 30.0);
  EXPECT_DOUBLE_EQ(t.global_total(3).value(), 37.0);
}

TEST(TrafficTrace, StateRowView) {
  TrafficTrace t(Period{0, 1}, 2);
  t.set_hits(5, StateId{0}, HitsPerSec{1.0});
  t.set_hits(5, StateId{1}, HitsPerSec{2.0});
  const auto row = t.state_row(5);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 2.0);
}

TEST(TrafficTrace, Scale) {
  TrafficTrace t(Period{0, 1}, 1);
  t.set_hits(0, StateId{0}, HitsPerSec{10.0});
  t.set_world(0, WorldRegion::kEurope, HitsPerSec{4.0});
  t.scale(2.5);
  EXPECT_DOUBLE_EQ(t.hits(0, StateId{0}).value(), 25.0);
  EXPECT_DOUBLE_EQ(t.world(0, WorldRegion::kEurope).value(), 10.0);
  EXPECT_THROW(t.scale(0.0), std::invalid_argument);
}

TEST(TrafficTrace, Errors) {
  EXPECT_THROW(TrafficTrace(Period{0, 0}, 1), std::invalid_argument);
  EXPECT_THROW(TrafficTrace(Period{0, 1}, 0), std::invalid_argument);
  TrafficTrace t(Period{0, 1}, 2);
  EXPECT_THROW((void)t.hits(12, StateId{0}), std::out_of_range);
  EXPECT_THROW((void)t.hits(0, StateId{5}), std::out_of_range);
  EXPECT_THROW((void)t.hits(-1, StateId{0}), std::out_of_range);
  EXPECT_THROW(t.set_hits(0, StateId::invalid(), HitsPerSec{1.0}),
               std::out_of_range);
}

TEST(WorldRegion, Names) {
  EXPECT_EQ(to_string(WorldRegion::kEurope), "Europe");
  EXPECT_EQ(to_string(WorldRegion::kAsiaPacific), "Asia-Pacific");
}

}  // namespace
}  // namespace cebis::traffic
