// Akamai-like baseline allocation: weight normalization, proximity
// dominance, network-affinity rewiring, and the 9-region subset.

#include <gtest/gtest.h>

#include "geo/distance_model.h"
#include "test_support.h"
#include "traffic/akamai_allocation.h"

namespace cebis::traffic {
namespace {

class BaselineAllocationTest : public ::testing::Test {
 protected:
  BaselineAllocationTest() : alloc_(2011) {}
  BaselineAllocation alloc_;
  const geo::StateRegistry& states_ = geo::StateRegistry::instance();
  const ServerCityRegistry& cities_ = ServerCityRegistry::instance();
};

TEST_F(BaselineAllocationTest, CityWeightsSumToOne) {
  for (std::size_t s = 0; s < alloc_.state_count(); ++s) {
    double sum = 0.0;
    for (std::size_t c = 0; c < alloc_.city_count(); ++c) {
      const double w = alloc_.weight(StateId{static_cast<std::int32_t>(s)},
                                     CityId{static_cast<std::int32_t>(c)});
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, test::kNumericTol) << "state " << s;
  }
}

TEST_F(BaselineAllocationTest, ClusterWeightsNormalizedOverSubset) {
  for (std::size_t s = 0; s < alloc_.state_count(); ++s) {
    const StateId state{static_cast<std::int32_t>(s)};
    const double subset = alloc_.subset_fraction(state);
    EXPECT_GE(subset, 0.0);
    EXPECT_LE(subset, 1.0 + test::kNumericTol);
    if (subset > 0.0) {
      double sum = 0.0;
      for (std::size_t k = 0; k < kClusterCount; ++k) {
        sum += alloc_.cluster_weight(state, k);
      }
      EXPECT_NEAR(sum, 1.0, test::kNumericTol) << "state " << s;
    }
  }
}

TEST_F(BaselineAllocationTest, ProximityDominates) {
  // Massachusetts should send most of its traffic to the MA cluster.
  const StateId ma = states_.by_code("MA");
  double ma_weight = 0.0;
  for (std::size_t k = 0; k < kClusterCount; ++k) {
    if (cities_.cluster_label(k) == "MA") ma_weight = alloc_.cluster_weight(ma, k);
  }
  EXPECT_GT(ma_weight * alloc_.subset_fraction(ma), 0.4);
}

TEST_F(BaselineAllocationTest, SubsetCoversMostTraffic) {
  // Population-weighted subset fraction: the 18 market cities cover the
  // bulk of US population's traffic (Fig 14's "9-region subset" is
  // roughly half of US traffic).
  double weighted = 0.0;
  double pop = 0.0;
  for (std::size_t s = 0; s < alloc_.state_count(); ++s) {
    const StateId state{static_cast<std::int32_t>(s)};
    const double p = states_.info(state).population;
    weighted += alloc_.subset_fraction(state) * p;
    pop += p;
  }
  const double overall = weighted / pop;
  EXPECT_GT(overall, 0.35);
  EXPECT_LT(overall, 0.95);
}

TEST_F(BaselineAllocationTest, DeterministicPerSeed) {
  const BaselineAllocation again(2011);
  const BaselineAllocation other(999);
  int diffs = 0;
  for (std::size_t s = 0; s < alloc_.state_count(); ++s) {
    const StateId state{static_cast<std::int32_t>(s)};
    for (std::size_t c = 0; c < alloc_.city_count(); ++c) {
      const CityId city{static_cast<std::int32_t>(c)};
      EXPECT_DOUBLE_EQ(alloc_.weight(state, city), again.weight(state, city));
      if (alloc_.weight(state, city) != other.weight(state, city)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);  // affinity rewiring depends on the seed
}

TEST_F(BaselineAllocationTest, AffinityCreatesDistantAssignments) {
  // With affinity_fraction = 1, every state's tertiary slot is remote.
  BaselineConfig config;
  config.affinity_fraction = 1.0;
  const BaselineAllocation rewired(states_, cities_, config, 7);
  const geo::DistanceModel dm(states_.all(), cities_.locations());
  int remote_states = 0;
  for (std::size_t s = 0; s < rewired.state_count(); ++s) {
    const StateId state{static_cast<std::int32_t>(s)};
    for (std::size_t c = 0; c < rewired.city_count(); ++c) {
      const CityId city{static_cast<std::int32_t>(c)};
      if (rewired.weight(state, city) > 0.0 &&
          dm.distance(state, c).value() > 1500.0) {
        ++remote_states;
        break;
      }
    }
  }
  EXPECT_GT(remote_states, 20);
}

TEST_F(BaselineAllocationTest, ClusterLoadsAggregation) {
  // Tiny synthetic trace: all traffic from one state must land on that
  // state's clusters in proportion to the subset weights.
  TrafficTrace trace(Period{trace_period().begin, trace_period().begin + 1},
                     states_.size());
  const StateId ny = states_.by_code("NY");
  for (std::int64_t step = 0; step < trace.steps(); ++step) {
    trace.set_hits(step, ny, HitsPerSec{1000.0});
  }
  const ClusterLoads loads = baseline_cluster_loads(trace, alloc_);
  EXPECT_EQ(loads.steps, trace.steps());
  EXPECT_EQ(loads.clusters, kClusterCount);
  const double subset = alloc_.subset_fraction(ny);
  double total = 0.0;
  for (std::size_t k = 0; k < kClusterCount; ++k) {
    EXPECT_NEAR(loads.at(0, k), 1000.0 * subset * alloc_.cluster_weight(ny, k),
                test::kNumericTol);
    total += loads.at(0, k);
  }
  EXPECT_NEAR(total, 1000.0 * subset, test::kNumericTol);
}

TEST_F(BaselineAllocationTest, Errors) {
  EXPECT_THROW((void)alloc_.weight(StateId::invalid(), CityId{0}),
               std::out_of_range);
  EXPECT_THROW((void)alloc_.cluster_weight(StateId{0}, 99), std::out_of_range);
  ClusterLoads empty;
  EXPECT_THROW((void)empty.at(0, 0), std::out_of_range);
}

}  // namespace
}  // namespace cebis::traffic
