// Golden-value regression anchors for the headline paper numbers the
// simulation encodes. Unlike test_experiment.cpp (qualitative bands),
// these pin the seed-2009 reproduction outputs exactly: any change to
// calendars, the market generator, the synthetic workload, or the
// routers that shifts a headline figure fails here first, in ctest,
// instead of silently drifting in bench output.
//
// If a change moves one of these numbers *on purpose*, update the
// golden value in the same commit and say why in the commit message.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "storage/battery.h"
#include "test_support.h"

namespace cebis::core {
namespace {

// One shared 39-month fixture; built once per process (~0.2s).
class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new Fixture(Fixture::make(test::kTestSeed));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static Fixture* fixture_;

  static ScenarioSpec synthetic_spec(const char* router) {
    return ScenarioSpec{
        .router = router,
        .energy = energy::optimistic_future_params(),
        .workload = WorkloadKind::kSynthetic39Month,
    };
  }
};

Fixture* GoldenFigures::fixture_ = nullptr;

/// Relative tolerance for pinned cost ratios: tight enough that any
/// algorithmic change trips it, loose enough to survive FP reassociation
/// from compiler/flag changes.
constexpr double kGoldenRel = 1e-6;

TEST_F(GoldenFigures, StudyPeriodIs39Months) {
  // §6.3: Jan 2006 through Mar 2009, the paper's ">28k hourly samples".
  const Period p = study_period();
  EXPECT_EQ(p.hours(), 28464);
  EXPECT_EQ(date_of(p.begin), (CivilDate{2006, 1, 1}));
  EXPECT_EQ(date_of(p.end), (CivilDate{2009, 4, 1}));
}

TEST_F(GoldenFigures, TracePeriodIs24Days) {
  // §6.1: the 24-day Akamai trace around the turn of 2008/2009.
  const Period p = trace_period();
  EXPECT_EQ(p.hours(), 24 * 24);
  EXPECT_EQ(date_of(p.begin), (CivilDate{2008, 12, 17}));
  EXPECT_EQ(date_of(p.end), (CivilDate{2009, 1, 10}));
}

TEST_F(GoldenFigures, BaselineThirtyNineMonthCost) {
  // The denominator every Fig 18 ratio is normalized against.
  const RunResult base = run_scenario(*fixture_, synthetic_spec("baseline"));
  CEBIS_EXPECT_REL_NEAR(base.total_cost.value(), 1030601.208946, kGoldenRel);
}

TEST_F(GoldenFigures, Fig18MaxSavingsBound) {
  // Fig 18, rightmost point: 2500 km threshold, relaxed 95/5, optimistic
  // elasticity — the best case the reproduction reaches (paper ~0.55;
  // this synthetic market lands at 0.667).
  ScenarioSpec s = synthetic_spec("price-aware");
  s.config = PriceAwareConfig{.distance_threshold = Km{2500.0}};
  s.enforce_p95 = false;
  const double base =
      run_scenario(*fixture_, synthetic_spec("baseline")).total_cost.value();
  const double relax = run_scenario(*fixture_, s).total_cost.value() / base;
  CEBIS_EXPECT_REL_NEAR(relax, 0.667258481, kGoldenRel);

  s.enforce_p95 = true;
  const double follow = run_scenario(*fixture_, s).total_cost.value() / base;
  CEBIS_EXPECT_REL_NEAR(follow, 0.865272435, kGoldenRel);
}

TEST_F(GoldenFigures, DynamicBeatsStatic) {
  // §6.3 "Dynamic Beats Static": moving every server to the cheapest hub
  // (static relocation) is pinned at 0.702 normalized; the dynamic
  // solution above (0.667) must stay strictly below it.
  const double base =
      run_scenario(*fixture_, synthetic_spec("baseline")).total_cost.value();
  const double static_cost =
      run_scenario(*fixture_, synthetic_spec("static-cheapest")).total_cost.value() /
      base;
  CEBIS_EXPECT_REL_NEAR(static_cost, 0.702096107, kGoldenRel);

  ScenarioSpec s = synthetic_spec("price-aware");
  s.config = PriceAwareConfig{.distance_threshold = Km{2500.0}};
  s.enforce_p95 = false;
  const double relax = run_scenario(*fixture_, s).total_cost.value() / base;
  EXPECT_LT(relax, static_cost);
}

TEST_F(GoldenFigures, LyapunovStorageBeatsZeroBattery) {
  // ISSUE 3 acceptance anchor: under a wholesale-indexed tariff with a
  // $12/kW-month demand charge, per-cluster 8-hour batteries run by the
  // Lyapunov policy bill strictly less than the identical scenario with
  // zero battery capacity - pinned at 0.9815 of the no-battery bill
  // (energy arbitrage nets the gain; the peak guard keeps the demand
  // component within a sliver of raw).
  ScenarioSpec spec{
      .router = "price_aware+storage",
      .config = PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
  StorageSpec st;
  st.policy = "lyapunov";
  st.tariff.demand_usd_per_kw_month = Usd{12.0};
  spec.storage = st;
  const RunResult zero = run_scenario(*fixture_, spec);
  ASSERT_TRUE(zero.storage.engaged);
  EXPECT_EQ(zero.storage.net_total().value(), zero.storage.raw_total().value());

  const double hours = static_cast<double>(trace_period().hours());
  for (std::size_t c = 0; c < fixture_->clusters.size(); ++c) {
    spec.storage->per_cluster.push_back(storage::battery_for_mean_load(
        zero.cluster_energy[c] / hours, 8.0));
  }
  const RunResult with = run_scenario(*fixture_, spec);
  EXPECT_LT(with.storage.net_total().value(), zero.storage.net_total().value());
  CEBIS_EXPECT_REL_NEAR(
      with.storage.net_total().value() / zero.storage.net_total().value(),
      0.981492898, kGoldenRel);
}

}  // namespace
}  // namespace cebis::core
