// Golden-value regression anchors for the headline paper numbers the
// simulation encodes. Unlike test_experiment.cpp (qualitative bands),
// these pin the seed-2009 reproduction outputs exactly: any change to
// calendars, the market generator, the synthetic workload, or the
// routers that shifts a headline figure fails here first, in ctest,
// instead of silently drifting in bench output.
//
// If a change moves one of these numbers *on purpose*, update the
// golden value in the same commit and say why in the commit message.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_support.h"

namespace cebis::core {
namespace {

// One shared 39-month fixture; built once per process (~0.2s).
class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new Fixture(Fixture::make(test::kTestSeed));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static Fixture* fixture_;

  static Scenario synthetic_scenario() {
    Scenario s;
    s.energy = energy::optimistic_future_params();
    s.workload = WorkloadKind::kSynthetic39Month;
    return s;
  }
};

Fixture* GoldenFigures::fixture_ = nullptr;

/// Relative tolerance for pinned cost ratios: tight enough that any
/// algorithmic change trips it, loose enough to survive FP reassociation
/// from compiler/flag changes.
constexpr double kGoldenRel = 1e-6;

TEST_F(GoldenFigures, StudyPeriodIs39Months) {
  // §6.3: Jan 2006 through Mar 2009, the paper's ">28k hourly samples".
  const Period p = study_period();
  EXPECT_EQ(p.hours(), 28464);
  EXPECT_EQ(date_of(p.begin), (CivilDate{2006, 1, 1}));
  EXPECT_EQ(date_of(p.end), (CivilDate{2009, 4, 1}));
}

TEST_F(GoldenFigures, TracePeriodIs24Days) {
  // §6.1: the 24-day Akamai trace around the turn of 2008/2009.
  const Period p = trace_period();
  EXPECT_EQ(p.hours(), 24 * 24);
  EXPECT_EQ(date_of(p.begin), (CivilDate{2008, 12, 17}));
  EXPECT_EQ(date_of(p.end), (CivilDate{2009, 1, 10}));
}

TEST_F(GoldenFigures, BaselineThirtyNineMonthCost) {
  // The denominator every Fig 18 ratio is normalized against.
  const RunResult base = run_baseline(*fixture_, synthetic_scenario());
  CEBIS_EXPECT_REL_NEAR(base.total_cost.value(), 1030601.208946, kGoldenRel);
}

TEST_F(GoldenFigures, Fig18MaxSavingsBound) {
  // Fig 18, rightmost point: 2500 km threshold, relaxed 95/5, optimistic
  // elasticity — the best case the reproduction reaches (paper ~0.55;
  // this synthetic market lands at 0.667).
  Scenario s = synthetic_scenario();
  s.distance_threshold = Km{2500.0};
  s.enforce_p95 = false;
  const double base = run_baseline(*fixture_, s).total_cost.value();
  const double relax = run_price_aware(*fixture_, s).total_cost.value() / base;
  CEBIS_EXPECT_REL_NEAR(relax, 0.667258481, kGoldenRel);

  s.enforce_p95 = true;
  const double follow = run_price_aware(*fixture_, s).total_cost.value() / base;
  CEBIS_EXPECT_REL_NEAR(follow, 0.865272435, kGoldenRel);
}

TEST_F(GoldenFigures, DynamicBeatsStatic) {
  // §6.3 "Dynamic Beats Static": moving every server to the cheapest hub
  // (static relocation) is pinned at 0.702 normalized; the dynamic
  // solution above (0.667) must stay strictly below it.
  Scenario s = synthetic_scenario();
  const double base = run_baseline(*fixture_, s).total_cost.value();
  const double static_cost =
      run_static_cheapest(*fixture_, s).total_cost.value() / base;
  CEBIS_EXPECT_REL_NEAR(static_cost, 0.702096107, kGoldenRel);

  s.distance_threshold = Km{2500.0};
  s.enforce_p95 = false;
  const double relax = run_price_aware(*fixture_, s).total_cost.value() / base;
  EXPECT_LT(relax, static_cost);
}

}  // namespace
}  // namespace cebis::core
