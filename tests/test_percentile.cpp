// Percentile math: the 95/5 billing quantity and the distance
// percentiles of Fig 17 both flow through these functions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stats/percentile.h"
#include "test_support.h"

namespace cebis::stats {
namespace {

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Percentile, UnsortedInputIsSorted) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 7.0);
}

TEST(Percentile, Errors) {
  const std::vector<double> empty;
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(Percentile, P95OfUniformRamp) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_NEAR(p95(xs), 95.0, 0.1);
  EXPECT_NEAR(median(xs), 50.5, test::kNumericTol);
}

TEST(Percentile, Quartiles) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Quartiles q = quartiles(xs);
  EXPECT_DOUBLE_EQ(q.q25, 25.0);
  EXPECT_DOUBLE_EQ(q.q50, 50.0);
  EXPECT_DOUBLE_EQ(q.q75, 75.0);
}

TEST(PercentileAccumulator, UnweightedMatchesBatch) {
  PercentileAccumulator acc;
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    const double v = (i * 37) % 100;
    acc.add(v);
    xs.push_back(v);
  }
  EXPECT_DOUBLE_EQ(acc.percentile(95.0), percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(acc.mean(), 49.5);
}

TEST(PercentileAccumulator, WeightedPercentile) {
  PercentileAccumulator acc;
  acc.add_weighted(1.0, 99.0);
  acc.add_weighted(100.0, 1.0);
  // 99% of the mass sits at 1.0.
  EXPECT_DOUBLE_EQ(acc.percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.percentile(99.9), 100.0);
  EXPECT_NEAR(acc.mean(), (1.0 * 99.0 + 100.0) / 100.0, test::kTightTol);
}

TEST(PercentileAccumulator, MixedWeightRetrofit) {
  PercentileAccumulator acc;
  acc.add(10.0);                 // implicit weight 1
  acc.add_weighted(20.0, 3.0);   // retrofits unit weights
  EXPECT_NEAR(acc.mean(), (10.0 + 60.0) / 4.0, test::kTightTol);
}

TEST(PercentileAccumulator, Errors) {
  PercentileAccumulator acc;
  EXPECT_THROW((void)acc.percentile(50.0), std::invalid_argument);
  EXPECT_THROW((void)acc.mean(), std::invalid_argument);
  EXPECT_THROW(acc.add_weighted(1.0, -1.0), std::invalid_argument);
}

TEST(StreamingPercentile, BitIdenticalToBatchAcrossSizesAndPs) {
  // The engine swaps stats::p95 over the retained load history for the
  // streaming top-K sketch; the swap is only legal because the sketch
  // reproduces the batch computation bit-for-bit.
  auto rng = test::test_rng();
  for (const double p : {0.0, 42.5, 95.0, 99.0, 100.0}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{19},
                                std::size_t{100}, std::size_t{577}}) {
      StreamingPercentile sketch(static_cast<std::int64_t>(n), p);
      std::vector<double> xs;
      xs.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Coarse quantization forces duplicate values across the kept /
        // discarded boundary.
        const double x = std::floor(rng.uniform(0.0, 20.0));
        xs.push_back(x);
        sketch.add(x);
      }
      const double batch = percentile(xs, p);
      const double streamed = sketch.value();
      EXPECT_EQ(batch, streamed) << "n=" << n << " p=" << p;
    }
  }
}

TEST(StreamingPercentile, Errors) {
  EXPECT_THROW(StreamingPercentile(0, 95.0), std::invalid_argument);
  EXPECT_THROW(StreamingPercentile(10, 101.0), std::invalid_argument);
  StreamingPercentile sketch(2, 95.0);
  sketch.add(1.0);
  EXPECT_THROW((void)sketch.value(), std::logic_error);  // one sample short
  sketch.add(2.0);
  EXPECT_EQ(sketch.count(), 2);
  EXPECT_THROW(sketch.add(3.0), std::logic_error);  // one sample over
}

/// Property sweep: percentile_sorted is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  std::vector<double> xs;
  for (int i = 0; i < 57; ++i) xs.push_back(static_cast<double>((i * 13) % 57));
  std::sort(xs.begin(), xs.end());
  const double p = GetParam();
  EXPECT_LE(percentile_sorted(xs, p), percentile_sorted(xs, std::min(100.0, p + 5.0)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotone,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0));

}  // namespace
}  // namespace cebis::stats
