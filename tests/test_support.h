#ifndef CEBIS_TESTS_TEST_SUPPORT_H
#define CEBIS_TESTS_TEST_SUPPORT_H

// Shared support for the cebis test suites: tolerance levels, the
// deterministic seed policy, and tmp-file fixtures for the io tests.
// Test-only — nothing in src/ may include this.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/rng.h"

namespace cebis::test {

// -- Tolerances ------------------------------------------------------------
//
// Three levels, chosen by how much floating-point accumulation sits
// between the inputs and the asserted value:
//
//   kTightTol   closed-form arithmetic, no accumulation (exact up to ulps)
//   kNumericTol a handful of ops (weights summing to 1, small dot products)
//   kSumTol     long reductions: trace-length or study-period accumulations
inline constexpr double kTightTol = 1e-12;
inline constexpr double kNumericTol = 1e-9;
inline constexpr double kSumTol = 1e-6;

/// CSV round-trips: bounded by the writer's decimal precision, not by FP
/// error, so it gets its own named level even though it equals kSumTol.
inline constexpr double kCsvRoundTripTol = 1e-6;

/// Relative-error assert for quantities whose magnitude varies by orders
/// of magnitude (costs in USD, energy in MWh).
#define CEBIS_EXPECT_REL_NEAR(actual, expected, rel)                        \
  EXPECT_NEAR(actual, expected,                                             \
              std::abs(static_cast<double>(expected)) * (rel) + 1e-15)

// -- Deterministic seeding -------------------------------------------------
//
// Every stochastic test draws from Rng streams derived from one root
// seed, via the same split() discipline the library itself uses. 2009 is
// the paper year and matches the bench default, so test fixtures and
// bench fixtures see identical streams.
inline constexpr std::uint64_t kTestSeed = 2009;

/// Child stream `stream` of the root test seed. Use distinct stream ids
/// per fixture so adding draws to one test never perturbs another.
[[nodiscard]] inline stats::Rng test_rng(std::uint64_t stream = 0) {
  return stats::Rng(kTestSeed).split(stream);
}

// -- Tmp-file fixtures (io tests) ------------------------------------------

/// Self-deleting file under gtest's TempDir. Name it uniquely per test
/// (ctest runs suites in parallel against a shared TempDir).
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Whole file as a string (empty if unreadable).
[[nodiscard]] inline std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace cebis::test

#endif  // CEBIS_TESTS_TEST_SUPPORT_H
