// Server city registry: 25 cities, 18 with market data, nine clusters.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "traffic/server_cities.h"

namespace cebis::traffic {
namespace {

TEST(ServerCities, TwentyFiveCities) {
  const auto& reg = ServerCityRegistry::instance();
  EXPECT_EQ(reg.size(), 25u);
  int with_market = 0;
  for (const auto& c : reg.all()) {
    if (c.has_market_data()) ++with_market;
  }
  EXPECT_EQ(with_market, 18);  // paper: seven cities discarded
}

TEST(ServerCities, NineClustersAllPopulated) {
  const auto& reg = ServerCityRegistry::instance();
  std::set<int> clusters;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const int k = reg.cluster_of(CityId{static_cast<std::int32_t>(i)});
    if (k >= 0) clusters.insert(k);
  }
  EXPECT_EQ(clusters.size(), kClusterCount);
}

TEST(ServerCities, DiscardedCitiesHaveNoCluster) {
  const auto& reg = ServerCityRegistry::instance();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const CityId id{static_cast<std::int32_t>(i)};
    if (!reg.info(id).has_market_data()) {
      EXPECT_EQ(reg.cluster_of(id), -1) << reg.info(id).name;
    }
  }
}

TEST(ServerCities, ClusterLabelsMatchFig19) {
  const auto& reg = ServerCityRegistry::instance();
  const char* expected[] = {"CA1", "CA2", "MA", "NY", "IL", "VA", "NJ", "TX1", "TX2"};
  for (std::size_t k = 0; k < kClusterCount; ++k) {
    EXPECT_EQ(reg.cluster_label(k), expected[k]);
  }
}

TEST(ServerCities, ClusterHubsAreTrafficHubs) {
  const auto& reg = ServerCityRegistry::instance();
  const auto& hubs = market::HubRegistry::instance();
  const auto traffic_hubs = hubs.traffic_hubs();
  for (std::size_t k = 0; k < kClusterCount; ++k) {
    EXPECT_EQ(reg.cluster_hub(k), traffic_hubs[k]);
  }
}

TEST(ServerCities, CitiesGroupByStateSensibly) {
  const auto& reg = ServerCityRegistry::instance();
  // All TX cities map to TX1/TX2; all CA cities to CA1/CA2.
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const CityId id{static_cast<std::int32_t>(i)};
    const auto& c = reg.info(id);
    const int k = reg.cluster_of(id);
    if (k < 0) continue;
    const auto label = reg.cluster_label(static_cast<std::size_t>(k));
    if (c.state == "TX") {
      EXPECT_TRUE(label == "TX1" || label == "TX2");
    }
    if (c.state == "CA") {
      EXPECT_TRUE(label == "CA1" || label == "CA2");
    }
    if (c.state == "MA") {
      EXPECT_EQ(label, "MA");
    }
  }
}

TEST(ServerCities, LocationsSpanIndex) {
  const auto& reg = ServerCityRegistry::instance();
  EXPECT_EQ(reg.locations().size(), reg.size());
}

TEST(ServerCities, Errors) {
  const auto& reg = ServerCityRegistry::instance();
  EXPECT_THROW((void)reg.info(CityId::invalid()), std::out_of_range);
  EXPECT_THROW((void)reg.cluster_of(CityId{99}), std::out_of_range);
  EXPECT_THROW((void)reg.cluster_hub(9), std::out_of_range);
  EXPECT_THROW((void)reg.cluster_label(9), std::out_of_range);
}

}  // namespace
}  // namespace cebis::traffic
