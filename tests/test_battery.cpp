// Battery model invariants: parameter validation, the charge/discharge
// clamps, and - the load-bearing property - exact state-of-charge
// conservation under round-trip efficiency across randomized operation
// traces (the ISSUE 3 acceptance fuzz: >= 100 random traces).

#include <gtest/gtest.h>

#include <stdexcept>

#include "storage/battery.h"
#include "test_support.h"

namespace cebis::storage {
namespace {

BatteryParams small_battery() {
  BatteryParams p;
  p.capacity = MegawattHours{10.0};
  p.max_charge = Watts{2e6};     // 2 MW
  p.max_discharge = Watts{4e6};  // 4 MW
  p.round_trip_efficiency = 0.8;
  p.initial_soc_fraction = 0.5;
  return p;
}

TEST(Battery, Validation) {
  BatteryParams p = small_battery();
  p.capacity = MegawattHours{-1.0};
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p = small_battery();
  p.max_charge = Watts{-1.0};
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p = small_battery();
  p.round_trip_efficiency = 0.0;
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p.round_trip_efficiency = 1.2;
  EXPECT_THROW(Battery{p}, std::invalid_argument);
  p = small_battery();
  p.initial_soc_fraction = 1.5;
  EXPECT_THROW(Battery{p}, std::invalid_argument);
}

TEST(Battery, InitialSoc) {
  Battery b(small_battery());
  EXPECT_DOUBLE_EQ(b.soc().value(), 5.0);
  EXPECT_DOUBLE_EQ(b.soc_fraction(), 0.5);
}

TEST(Battery, ChargeRespectsPowerAndHeadroom) {
  Battery b(small_battery());
  // 2 MW for one hour caps the draw at 2 MWh.
  EXPECT_DOUBLE_EQ(b.charge(MegawattHours{100.0}, kOneHour).value(), 2.0);
  EXPECT_DOUBLE_EQ(b.soc().value(), 5.0 + 2.0 * 0.8);
  // Two more full-power hours take the soc to 6.6 + 1.6 + 1.6 = 9.8;
  // then the headroom binds: the last 0.2 MWh of soc needs 0.25 MWh of
  // grid energy, under the 2 MWh/h power cap.
  (void)b.charge(MegawattHours{100.0}, kOneHour);
  (void)b.charge(MegawattHours{100.0}, kOneHour);
  const double drawn = b.charge(MegawattHours{100.0}, kOneHour).value();
  EXPECT_NEAR(drawn, (10.0 - 9.8) / 0.8, test::kNumericTol);
  EXPECT_NEAR(b.soc().value(), 10.0, test::kNumericTol);
  // Full battery accepts nothing.
  EXPECT_DOUBLE_EQ(b.charge(MegawattHours{1.0}, kOneHour).value(), 0.0);
}

TEST(Battery, DischargeRespectsPowerAndSoc) {
  Battery b(small_battery());
  // 4 MW for 5 minutes = 1/3 MWh.
  EXPECT_NEAR(b.discharge(MegawattHours{5.0}, kFiveMinutes).value(), 4.0 / 12.0,
              test::kNumericTol);
  // Drain the rest; delivery stops at zero soc.
  double total = 4.0 / 12.0;
  for (int i = 0; i < 100; ++i) {
    total += b.discharge(MegawattHours{5.0}, kOneHour).value();
  }
  EXPECT_NEAR(total, 5.0, test::kNumericTol);
  EXPECT_NEAR(b.soc().value(), 0.0, test::kNumericTol);
  EXPECT_DOUBLE_EQ(b.discharge(MegawattHours{1.0}, kOneHour).value(), 0.0);
}

TEST(Battery, ZeroCapacityIsInert) {
  Battery b(BatteryParams{});
  EXPECT_DOUBLE_EQ(b.charge(MegawattHours{1.0}, kOneHour).value(), 0.0);
  EXPECT_DOUBLE_EQ(b.discharge(MegawattHours{1.0}, kOneHour).value(), 0.0);
  EXPECT_DOUBLE_EQ(b.soc_fraction(), 0.0);
}

TEST(Battery, SizingHelper) {
  const BatteryParams p = battery_for_mean_load(0.5, 4.0);
  EXPECT_DOUBLE_EQ(p.capacity.value(), 2.0);
  EXPECT_DOUBLE_EQ(p.max_charge.megawatts(), 0.5);
  EXPECT_DOUBLE_EQ(p.max_discharge.megawatts(), 0.5);
  EXPECT_DOUBLE_EQ(p.round_trip_efficiency, 0.85);
  EXPECT_THROW((void)battery_for_mean_load(-1.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)battery_for_mean_load(1.0, 4.0, 0.0), std::invalid_argument);
}

TEST(Battery, SocConservationFuzz) {
  // The acceptance invariant: across >= 100 randomized operation traces,
  //   soc == initial + efficiency * total_charged - total_discharged
  // holds exactly (within FP accumulation tolerance), soc never leaves
  // [0, capacity], and no clamp is ever exceeded.
  stats::Rng rng = test::test_rng(31);
  for (int trace = 0; trace < 120; ++trace) {
    BatteryParams p;
    p.capacity = MegawattHours{rng.uniform(0.1, 50.0)};
    p.max_charge = Watts{rng.uniform(0.05, 20.0) * 1e6};
    p.max_discharge = Watts{rng.uniform(0.05, 20.0) * 1e6};
    p.round_trip_efficiency = rng.uniform(0.5, 1.0);
    p.initial_soc_fraction = rng.uniform(0.0, 1.0);
    Battery b(p);
    const double initial = b.soc().value();

    for (int step = 0; step < 500; ++step) {
      const Hours dt{rng.bernoulli(0.5) ? 5.0 / 60.0 : 1.0};
      const MegawattHours request{rng.uniform(0.0, 10.0)};
      if (rng.bernoulli(0.5)) {
        const double drawn = b.charge(request, dt).value();
        EXPECT_LE(drawn, request.value() + test::kNumericTol);
        EXPECT_LE(drawn, (p.max_charge * dt).value() + test::kNumericTol);
      } else {
        const double delivered = b.discharge(request, dt).value();
        EXPECT_LE(delivered, request.value() + test::kNumericTol);
        EXPECT_LE(delivered, (p.max_discharge * dt).value() + test::kNumericTol);
      }
      ASSERT_GE(b.soc().value(), -test::kNumericTol);
      ASSERT_LE(b.soc().value(), p.capacity.value() + test::kNumericTol);
    }

    const double expected = initial +
                            p.round_trip_efficiency * b.total_charged().value() -
                            b.total_discharged().value();
    EXPECT_NEAR(b.soc().value(), expected, test::kSumTol) << "trace " << trace;
    EXPECT_NEAR(b.conversion_loss().value(),
                (1.0 - p.round_trip_efficiency) * b.total_charged().value(),
                test::kSumTol);
    EXPECT_GE(b.total_charged().value(), 0.0);
    EXPECT_GE(b.total_discharged().value(), 0.0);
  }
}

}  // namespace
}  // namespace cebis::storage
