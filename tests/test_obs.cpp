// The observability layer: MetricsRegistry semantics (labels, kinds,
// per-thread shard merging, disabled/inert modes), the concurrent
// hammer the TSan leg runs, Tracer span JSON, Prometheus/JSON
// exposition, and the layer's defining invariant - results are
// byte-identical with metrics and tracing enabled, disabled or absent
// (the sweep determinism guard mirrors ScenarioApiTest's
// ParallelSweepMatchesSerialByteForByte with taps attached).
//
// ObsMetricsTest runs in the TSan CI leg (see .github/workflows/ci.yml)
// - keep its tests free of multi-minute sweeps.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/observers.h"
#include "io/metrics_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/event_log.h"
#include "service/live_engine.h"
#include "stats/histogram.h"
#include "storage/battery.h"
#include "test_support.h"

namespace cebis {
namespace {

using obs::Labels;
using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Tracer;

// --- registry semantics -----------------------------------------------------

TEST(ObsMetricsTest, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry reg;
  obs::Counter requests =
      reg.counter("requests_total", "Requests served", {{"route", "a"}});
  obs::Gauge depth = reg.gauge("queue_depth", "Live queue depth");
  const std::vector<double> bounds = {1.0, 2.0};
  obs::Histogram latency =
      reg.histogram("latency_seconds", "Request latency", bounds);

  requests.add();
  requests.add(2.5);
  depth.set(7.0);
  depth.set(3.0);  // last writer wins
  latency.observe(0.5);
  latency.observe(1.5);
  latency.observe(99.0);  // overflow -> +Inf bucket

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(reg.series_count(), 3u);
  EXPECT_DOUBLE_EQ(snap.value_or("requests_total", -1.0, {{"route", "a"}}),
                   3.5);
  EXPECT_DOUBLE_EQ(snap.value_or("queue_depth", -1.0), 3.0);

  const obs::MetricSample* hist = snap.find("latency_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  ASSERT_EQ(hist->bucket_counts.size(), 3u);  // 2 bounds + the +Inf bucket
  EXPECT_DOUBLE_EQ(hist->bucket_counts[0], 1.0);
  EXPECT_DOUBLE_EQ(hist->bucket_counts[1], 1.0);
  EXPECT_DOUBLE_EQ(hist->bucket_counts[2], 1.0);
  EXPECT_DOUBLE_EQ(hist->sum, 101.0);
  EXPECT_DOUBLE_EQ(hist->count, 3.0);
}

TEST(ObsMetricsTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  obs::Counter a = reg.counter("c", "h", {{"x", "1"}, {"y", "2"}});
  obs::Counter b = reg.counter("c", "h", {{"y", "2"}, {"x", "1"}});
  a.add();
  b.add();
  EXPECT_EQ(reg.series_count(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("c", -1.0, {{"y", "2"}, {"x", "1"}}), 2.0);
}

TEST(ObsMetricsTest, KindAndBoundsConflictsThrow) {
  MetricsRegistry reg;
  (void)reg.counter("n", "h");
  EXPECT_THROW((void)reg.gauge("n", "h"), std::invalid_argument);
  const std::vector<double> b1 = {1.0};
  const std::vector<double> b2 = {2.0};
  (void)reg.histogram("h1", "h", b1);
  EXPECT_THROW((void)reg.histogram("h1", "h", b2), std::invalid_argument);
  // Same name + kind + bounds is the intended re-resolve path.
  (void)reg.histogram("h1", "h", b1);
  (void)reg.counter("n", "h");
}

TEST(ObsMetricsTest, DisabledRegistryAndDefaultHandlesAreInert) {
  MetricsRegistry off(/*enabled=*/false);
  obs::Counter c = off.counter("c", "h");
  obs::Gauge g = off.gauge("g", "h");
  const std::vector<double> bounds = {1.0};
  obs::Histogram h = off.histogram("h", "h", bounds);
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  c.add();
  g.set(1.0);
  h.observe(1.0);
  EXPECT_EQ(off.series_count(), 0u);
  EXPECT_TRUE(off.snapshot().samples.empty());

  obs::Counter none;  // the nullptr-registry path
  none.add();
  EXPECT_FALSE(none.live());
}

TEST(ObsMetricsTest, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry reg;
  obs::Counter c = reg.counter("c", "h");
  c.add(5.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("c", -1.0), 0.0);
  c.add(2.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("c", -1.0), 2.0);
}

TEST(ObsMetricsTest, LinearBoundsMatchStatsHistogramEdges) {
  // The obs histogram's buckets must reproduce stats::Histogram's bins
  // so dashboards and figure pipelines agree on bucket edges.
  const std::vector<double> bounds =
      MetricsRegistry::linear_bounds(0.0, 10.0, 0.5);
  const stats::Histogram ref(0.0, 10.0, 0.5);
  ASSERT_EQ(bounds.size(), ref.bin_count());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], ref.bin_hi(i)) << i;
  }
}

TEST(ObsMetricsTest, ShardsMergeAcrossThreads) {
  // Each worker resolves its OWN handle (the intended discipline) and
  // bumps it; the snapshot must see the exact total.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      obs::Counter c = reg.counter("work_total", "per-thread shard test");
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("work_total", -1.0),
                   double(kThreads) * kAdds);
}

TEST(ObsMetricsTest, ConcurrentHammerIsRaceFree) {
  // The TSan target: writers hammer counters/gauges/histograms on their
  // own shards while a reader snapshots concurrently. Values are
  // asserted only after the join (mid-flight snapshots are
  // consistent-enough by contract, not exact).
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 5'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      obs::Counter c =
          reg.counter("hammer_total", "h", {{"w", std::to_string(t)}});
      obs::Gauge g = reg.gauge("hammer_gauge", "h");
      const std::vector<double> bounds = {0.5, 1.5};
      obs::Histogram h = reg.histogram("hammer_hist", "h", bounds);
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.set(double(i));
        h.observe(double(i % 3));
      }
    });
  }
  std::thread reader([&reg, &stop] {
    while (!stop.load()) {
      (void)reg.snapshot();
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  const MetricsSnapshot snap = reg.snapshot();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        snap.value_or("hammer_total", -1.0, {{"w", std::to_string(t)}}),
        double(kIters));
  }
  const obs::MetricSample* hist = snap.find("hammer_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->count, double(kThreads) * kIters);
}

// --- tracer -----------------------------------------------------------------

TEST(ObsTraceTest, SpansAndInstantsEmitChromeTraceJson) {
  Tracer tracer;
  {
    const Tracer::Span outer =
        tracer.span("phase \"one\"", "test", {{"k", "v"}});
    const Tracer::Span inner = tracer.span("inner", "test");
    tracer.instant("marker", "test");
  }
  EXPECT_EQ(tracer.events(), 3u);
  const std::string json = tracer.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.events(), 0u);
}

TEST(ObsTraceTest, MaybeSpanWithoutTracerIsInert) {
  {
    const Tracer::Span span = obs::maybe_span(nullptr, "nothing");
    EXPECT_FALSE(span.live());
  }
  Tracer off(/*enabled=*/false);
  {
    const Tracer::Span span = obs::maybe_span(&off, "nothing");
    EXPECT_FALSE(span.live());
  }
  EXPECT_EQ(off.events(), 0u);
}

TEST(ObsTraceTest, WriteDumpsLoadableJson) {
  test::TempFile file("obs_trace.json");
  Tracer tracer;
  { const Tracer::Span span = tracer.span("write-test"); }
  tracer.write(file.path());
  const std::string contents = test::slurp(file.path());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("write-test"), std::string::npos);
}

// --- exposition -------------------------------------------------------------

TEST(MetricsExportTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("cebis_requests_total", "Requests", {{"route", "a\"b"}}).add(3);
  reg.gauge("cebis_depth", "Depth").set(1.5);
  const std::vector<double> bounds = {1.0, 2.0};
  obs::Histogram h = reg.histogram("cebis_lat", "Latency", bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = io::to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# HELP cebis_requests_total Requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cebis_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cebis_requests_total{route=\"a\\\"b\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cebis_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("cebis_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cebis_lat histogram"), std::string::npos);
  // Buckets are cumulative and end at the mandatory +Inf = _count.
  EXPECT_NE(text.find("cebis_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cebis_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("cebis_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("cebis_lat_sum 11"), std::string::npos);
  EXPECT_NE(text.find("cebis_lat_count 3"), std::string::npos);
}

TEST(MetricsExportTest, JsonSnapshotAndFileWriters) {
  test::TempFile prom("obs_export.prom");
  test::TempFile json("obs_export.json");
  MetricsRegistry reg;
  reg.counter("cebis_n", "N", {{"k", "v"}}).add(2);

  const MetricsSnapshot snap = reg.snapshot();
  const std::string doc = io::to_metrics_json(snap);
  EXPECT_NE(doc.find("\"name\":\"cebis_n\""), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(doc.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\":2"), std::string::npos);

  io::write_prometheus_file(snap, prom.path());
  io::write_metrics_json_file(snap, json.path());
  EXPECT_NE(test::slurp(prom.path()).find("cebis_n{k=\"v\"} 2"),
            std::string::npos);
  EXPECT_EQ(test::slurp(json.path()), doc);
}

// --- event log instrumentation ----------------------------------------------

TEST(ObsEventLogTest, WriterAndReaderCountersMatchTheAccessors) {
  test::TempFile file("obs_eventlog.bin");
  MetricsRegistry reg;
  std::int64_t frame_bytes = 0;
  {
    service::EventLogWriter writer(file.path(), {.metrics = &reg});
    for (int i = 0; i < 5; ++i) {
      writer.write(service::PriceTickRecord{HubId{0}, i, 42.0});
    }
    writer.close();
    frame_bytes = writer.bytes_written();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.value_or("cebis_eventlog_frames_written_total", -1),
                     double(writer.frames()));
    // The byte counter covers frames only; bytes_written() includes the
    // fixed header.
    EXPECT_GT(snap.value_or("cebis_eventlog_bytes_written_total", -1), 0.0);
    EXPECT_LT(snap.value_or("cebis_eventlog_bytes_written_total", -1),
              double(frame_bytes));
  }
  service::EventLogReader reader(file.path(), {.metrics = &reg});
  int read = 0;
  while (reader.next()) ++read;
  EXPECT_EQ(read, 5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_eventlog_frames_read_total", -1), 5.0);
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_eventlog_crc_failures_total", -1),
                   0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_eventlog_bytes_read_total", -1),
                   snap.value_or("cebis_eventlog_bytes_written_total", -2));
}

TEST(ObsEventLogTest, CrcFailureBumpsTheCounterBeforeThrowing) {
  test::TempFile file("obs_eventlog_crc.bin");
  {
    service::EventLogWriter writer(file.path());
    writer.write(service::PriceTickRecord{HubId{0}, 0, 42.0});
    writer.close();
  }
  {
    // Flip one payload byte of the first frame (header is 16 bytes,
    // frame header 5 more).
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 5 + 2);
    const char byte = 0x5A;
    f.write(&byte, 1);
  }
  MetricsRegistry reg;
  service::EventLogReader reader(file.path(), {.metrics = &reg});
  EXPECT_THROW((void)reader.next(), service::EventLogError);
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("cebis_eventlog_crc_failures_total", -1), 1.0);
}

// --- the determinism contract -----------------------------------------------

class ObsSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new core::Fixture(core::Fixture::make(test::kTestSeed));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static core::Fixture* fixture_;
};

core::Fixture* ObsSweepTest::fixture_ = nullptr;

/// Field-by-field bitwise comparison (mirrors test_scenario_api.cpp).
void expect_bitwise_equal(const core::RunResult& a, const core::RunResult& b,
                          std::size_t index) {
  EXPECT_EQ(a.total_cost.value(), b.total_cost.value()) << index;
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value()) << index;
  EXPECT_EQ(a.mean_distance_km, b.mean_distance_km) << index;
  EXPECT_EQ(a.p99_distance_km, b.p99_distance_km) << index;
  EXPECT_EQ(a.hit_hours, b.hit_hours) << index;
  EXPECT_EQ(a.overflow_steps, b.overflow_steps) << index;
  ASSERT_EQ(a.cluster_cost.size(), b.cluster_cost.size()) << index;
  for (std::size_t c = 0; c < a.cluster_cost.size(); ++c) {
    EXPECT_EQ(a.cluster_cost[c], b.cluster_cost[c]) << index;
    EXPECT_EQ(a.cluster_energy[c], b.cluster_energy[c]) << index;
    EXPECT_EQ(a.realized_p95[c], b.realized_p95[c]) << index;
  }
  ASSERT_EQ(a.hourly_energy.data().size(), b.hourly_energy.data().size());
  for (std::size_t i = 0; i < a.hourly_energy.data().size(); ++i) {
    EXPECT_EQ(a.hourly_energy.data()[i], b.hourly_energy.data()[i]) << index;
  }
  EXPECT_EQ(a.storage.engaged, b.storage.engaged) << index;
  EXPECT_EQ(a.storage.net_energy.value(), b.storage.net_energy.value())
      << index;
  EXPECT_EQ(a.storage.net_demand.value(), b.storage.net_demand.value())
      << index;
  EXPECT_EQ(a.storage.charged_mwh, b.storage.charged_mwh) << index;
  EXPECT_EQ(a.storage.discharged_mwh, b.storage.discharged_mwh) << index;
}

/// The mixed 11-cell sweep of ParallelSweepMatchesSerialByteForByte:
/// shared engines, a private-engine hook, storage, a sub-hourly market
/// and a pinned observer-carrying cell.
std::vector<core::ScenarioSpec> mixed_specs() {
  using core::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  const ScenarioSpec base{
      .router = "baseline",
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
  };
  specs.push_back(base);
  {
    ScenarioSpec st = base;
    st.router = "static-cheapest";
    specs.push_back(st);
  }
  for (const double km : {0.0, 1500.0}) {
    for (const bool follow : {true, false}) {
      ScenarioSpec s = base;
      s.router = "price-aware";
      s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
      s.enforce_p95 = follow;
      specs.push_back(s);
    }
  }
  {
    ScenarioSpec joint = base;
    joint.router = "joint-objective";
    joint.config = core::JointObjectiveConfig{.lambda_usd_per_mwh_km = 0.01};
    specs.push_back(joint);
  }
  {
    ScenarioSpec st = base;
    st.router = "price_aware+storage";
    st.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
    core::StorageSpec storage;
    storage.battery = storage::battery_for_mean_load(0.2, 4.0);
    storage.policy = "lyapunov";
    storage.tariff.demand_usd_per_kw_month = Usd{12.0};
    st.storage = storage;
    specs.push_back(st);
  }
  {
    ScenarioSpec sub = base;
    sub.router = "price-aware";
    sub.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
    sub.market_interval_minutes = 5;
    specs.push_back(sub);
  }
  {
    ScenarioSpec hooked = base;
    hooked.router = "price-aware";
    hooked.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
    hooked.capacity_factor = [](std::size_t, HourIndex) { return 1.0; };
    specs.push_back(hooked);
  }
  {
    ScenarioSpec observed = base;
    observed.router = "price-aware";
    observed.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
    specs.push_back(observed);
  }
  return specs;
}

TEST_F(ObsSweepTest, MetricsAndTracingNeverPerturbResults) {
  std::vector<core::ScenarioSpec> plain_specs = mixed_specs();
  std::vector<core::ScenarioSpec> tapped_specs = mixed_specs();
  ASSERT_EQ(plain_specs.size(), 11u);
  core::HourlyEnergyRecorder plain_recorder;
  core::HourlyEnergyRecorder tapped_recorder;
  plain_specs.back().observers = {&plain_recorder};
  tapped_specs.back().observers = {&tapped_recorder};

  const std::vector<core::RunResult> plain = core::run_scenarios(
      *fixture_, plain_specs, core::SweepOptions{.threads = 4});

  MetricsRegistry reg;
  Tracer tracer;
  core::SweepStats stats;
  const std::vector<core::RunResult> tapped = core::run_scenarios(
      *fixture_, tapped_specs,
      core::SweepOptions{.threads = 4, .taps = {&reg, &tracer}},
      &stats);

  ASSERT_EQ(tapped.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_bitwise_equal(plain[i], tapped[i], i);
  }

  // The tapped sweep actually observed things.
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_sweep_cells_total", -1.0),
                   double(plain_specs.size()));
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_sweep_engines_built_total", -1.0),
                   double(stats.engines_built));
  EXPECT_GT(snap.value_or("cebis_price_history_materialized_hours", -1.0),
            0.0);
  double steps = 0.0;
  double runs = 0.0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "cebis_engine_steps_total") steps += s.value;
    if (s.name == "cebis_engine_runs_total") runs += s.value;
  }
  EXPECT_GT(steps, 0.0);
  EXPECT_DOUBLE_EQ(runs, double(plain_specs.size()));
  // The storage cell carries a demand tariff, so its guard counter is
  // registered (activations may legitimately be zero).
  EXPECT_NE(snap.find("cebis_storage_guard_activations_total",
                      {{"policy", "lyapunov"}}),
            nullptr);
  // Per-worker fan-out accounting covers every pooled cell exactly once.
  double worker_cells = 0.0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "cebis_sweep_worker_cells_total") worker_cells += s.value;
  }
  EXPECT_DOUBLE_EQ(worker_cells, double(stats.parallel_cells));

  // Extended SweepStats: a wall-clock per cell plus the skew argmax.
  ASSERT_EQ(stats.cell_wall_ms.size(), plain_specs.size());
  for (const double ms : stats.cell_wall_ms) EXPECT_GT(ms, 0.0);
  EXPECT_LT(stats.slowest_cell, plain_specs.size());
  EXPECT_GT(stats.plan_wall_ms, 0.0);
  EXPECT_GT(stats.run_wall_ms, 0.0);

  // Spans were recorded for the plan phase and every cell.
  EXPECT_GE(tracer.events(), 1u + plain_specs.size());

  // The recorder rode along identically in both sweeps.
  ASSERT_EQ(plain_recorder.energy().data().size(),
            tapped_recorder.energy().data().size());
  for (std::size_t i = 0; i < plain_recorder.energy().data().size(); ++i) {
    EXPECT_EQ(plain_recorder.energy().data()[i],
              tapped_recorder.energy().data()[i]);
  }
}

// --- live engine instrumentation --------------------------------------------

class ObsLiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new core::Fixture(core::Fixture::make(test::kTestSeed));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static core::Fixture* fixture_;
};

core::Fixture* ObsLiveTest::fixture_ = nullptr;

/// Drives `hours` of a live session from the fixture's own market and
/// trace (the test_replay_equals_live idiom).
core::RunResult drive_live(const core::Fixture& fixture,
                           service::LiveEngine& live,
                           const service::LiveConfig& config) {
  const int sph = config.samples_per_hour;
  const int margin = config.delay_steps > 0
                         ? (config.delay_steps + sph - 1) / sph
                         : config.delay_hours;
  const Period priced{config.period.begin - margin, config.period.end};
  const market::PriceSet& feed = fixture.prices_covering(priced, sph);

  std::vector<HubId> hubs;
  for (const core::Cluster& c : fixture.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }

  const core::TraceWorkload demand_feed(fixture.trace, fixture.allocation);
  std::vector<double> demand(demand_feed.state_count(), 0.0);
  for (std::int64_t interval = priced.begin * sph;
       interval < config.period.end * sph; ++interval) {
    const HourIndex hour = interval / sph;
    const int sub = static_cast<int>(interval - hour * sph);
    for (const HubId hub : hubs) {
      live.on_price_tick(hub, interval, feed.rt_at(hub, hour, sub).value());
    }
    while (!live.done() && live.needed_end() <= live.sealed_end()) {
      demand_feed.demand(live.steps_done(), demand);
      live.advance(demand);
    }
  }
  return live.finish();
}

TEST_F(ObsLiveTest, JointRouterReportsPlanRebuildsGenerically) {
  // Satellite: LiveTelemetry::plan_rebuilds reads Router::counters()
  // instead of downcasting to PriceAwareRouter - the joint-objective
  // scheme must report a live nonzero count through the generic path.
  const Period trace = fixture_->trace.period();
  service::LiveConfig config;
  config.router = "joint-objective";
  config.router_config = core::JointObjectiveConfig{.lambda_usd_per_mwh_km =
                                                        0.01};
  config.period = Period{trace.begin, trace.begin + 3};
  config.shadow_baseline = false;

  service::LiveEngine live(*fixture_, config);
  (void)drive_live(*fixture_, live, config);
  EXPECT_GT(live.telemetry().plan_rebuilds, 0);
}

TEST_F(ObsLiveTest, LiveTapsCountTicksAndPublishSealHeadroom) {
  const Period trace = fixture_->trace.period();
  MetricsRegistry reg;
  service::LiveConfig plain_config;
  plain_config.period = Period{trace.begin, trace.begin + 3};
  plain_config.shadow_baseline = false;

  service::LiveConfig tapped_config = plain_config;
  tapped_config.taps.metrics = &reg;

  service::LiveEngine plain(*fixture_, plain_config);
  const core::RunResult a = drive_live(*fixture_, plain, plain_config);
  service::LiveEngine tapped(*fixture_, tapped_config);
  const core::RunResult b = drive_live(*fixture_, tapped, tapped_config);

  // Instrumented and uninstrumented sessions agree bitwise.
  expect_bitwise_equal(a, b, 0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_GT(snap.value_or("cebis_live_price_ticks_total", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("cebis_live_blocked_advances_total", -1.0),
                   0.0);
  EXPECT_GE(snap.value_or("cebis_live_seal_headroom_intervals", -1.0), 0.0);
  // One gap gauge per tracked hub, all zero after a gapless feed.
  int hub_gauges = 0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "cebis_live_hub_gap_intervals") {
      ++hub_gauges;
      EXPECT_DOUBLE_EQ(s.value, 0.0);
    }
  }
  EXPECT_GT(hub_gauges, 0);

  // A premature advance is counted, then throws.
  service::LiveConfig blocked_config = tapped_config;
  service::LiveEngine blocked(*fixture_, blocked_config);
  const std::vector<double> demand(blocked.state_count(), 1.0);
  EXPECT_THROW(blocked.advance(demand), std::logic_error);
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("cebis_live_blocked_advances_total", -1.0), 1.0);
}

}  // namespace
}  // namespace cebis
