// Cluster construction from baseline loads and the static-relocation
// transform.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "traffic/trace_generator.h"

namespace cebis::core {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const traffic::TrafficTrace trace =
        traffic::TraceGenerator(2014).generate(trace_period());
    const traffic::BaselineAllocation alloc(2014);
    loads_ = new traffic::ClusterLoads(
        traffic::baseline_cluster_loads(trace, alloc));
  }
  static void TearDownTestSuite() {
    delete loads_;
    loads_ = nullptr;
  }
  static traffic::ClusterLoads* loads_;
};

traffic::ClusterLoads* ClusterTest::loads_ = nullptr;

TEST_F(ClusterTest, NineClustersWithFig19Labels) {
  const auto clusters = build_clusters(*loads_);
  ASSERT_EQ(clusters.size(), traffic::kClusterCount);
  EXPECT_EQ(clusters[0].label, "CA1");
  EXPECT_EQ(clusters[8].label, "TX2");
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    EXPECT_EQ(clusters[k].id.index(), k);
    EXPECT_TRUE(clusters[k].hub.valid());
    EXPECT_GT(clusters[k].servers, 0);
    EXPECT_GT(clusters[k].capacity.value(), 0.0);
    EXPECT_LE(clusters[k].p95_reference.value(), clusters[k].capacity.value());
  }
}

TEST_F(ClusterTest, ClusterLocationsMatchHubs) {
  const auto clusters = build_clusters(*loads_);
  const auto& hubs = market::HubRegistry::instance();
  for (const auto& c : clusters) {
    EXPECT_EQ(c.location, hubs.info(c.hub).location);
  }
}

TEST_F(ClusterTest, ConsolidatePreservesTotals) {
  const auto clusters = build_clusters(*loads_);
  int total_servers = 0;
  double total_capacity = 0.0;
  for (const auto& c : clusters) {
    total_servers += c.servers;
    total_capacity += c.capacity.value();
  }
  const auto merged = consolidate_clusters(clusters, 4);
  ASSERT_EQ(merged.size(), clusters.size());
  EXPECT_EQ(merged[4].servers, total_servers);
  EXPECT_DOUBLE_EQ(merged[4].capacity.value(), total_capacity);
  for (std::size_t k = 0; k < merged.size(); ++k) {
    if (k == 4) continue;
    EXPECT_EQ(merged[k].servers, 0);
    EXPECT_DOUBLE_EQ(merged[k].capacity.value(), 0.0);
  }
  // Identity metadata survives.
  EXPECT_EQ(merged[4].label, clusters[4].label);
  EXPECT_EQ(merged[0].hub, clusters[0].hub);
}

TEST_F(ClusterTest, ConsolidateValidatesTarget) {
  const auto clusters = build_clusters(*loads_);
  EXPECT_THROW((void)consolidate_clusters(clusters, 99), std::out_of_range);
}

}  // namespace
}  // namespace cebis::core
