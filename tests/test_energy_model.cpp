// The §5.1 cluster power model: formula endpoints, elasticity, and the
// Fig 15 scenario presets.

#include <gtest/gtest.h>

#include <stdexcept>

#include "energy/energy_model.h"
#include "test_support.h"

namespace cebis::energy {
namespace {

TEST(EnergyModel, FormulaEndpoints) {
  // P(u) = n*(Pidle + (PUE-1)*Ppeak) + n*(Ppeak-Pidle)*(2u - u^1.4)
  EnergyModelParams p;
  p.peak_watts = 200.0;
  p.idle_fraction = 0.5;  // Pidle = 100
  p.pue = 1.5;
  const ClusterEnergyModel model(p);
  // u=0: fixed only = n*(100 + 0.5*200) = 200 W per server.
  EXPECT_DOUBLE_EQ(model.power(0.0, 1).value(), 200.0);
  EXPECT_DOUBLE_EQ(model.power(0.0, 10).value(), 2000.0);
  // u=1: 2*1 - 1^1.4 = 1, so fixed + (Ppeak-Pidle) = 300 W per server.
  EXPECT_DOUBLE_EQ(model.power(1.0, 1).value(), 300.0);
}

TEST(EnergyModel, VariablePartIsConcave) {
  // 2u - u^1.4 rises steeply at low utilization (the Google study's
  // empirical curvature): half-load draws more than half the variable
  // power.
  const ClusterEnergyModel model(fully_proportional_params());
  const double p_half = model.power(0.5, 1).value();
  const double p_full = model.power(1.0, 1).value();
  EXPECT_GT(p_half, 0.5 * p_full);
  EXPECT_LT(p_half, p_full);
}

TEST(EnergyModel, MonotoneInUtilization) {
  const ClusterEnergyModel model(google_params());
  double prev = -1.0;
  for (int i = 0; i <= 10; ++i) {
    const double p = model.power(i / 10.0, 100).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(EnergyModel, UtilizationClamped) {
  const ClusterEnergyModel model(google_params());
  EXPECT_DOUBLE_EQ(model.power(-0.5, 1).value(), model.power(0.0, 1).value());
  EXPECT_DOUBLE_EQ(model.power(1.5, 1).value(), model.power(1.0, 1).value());
}

TEST(EnergyModel, Inelasticity) {
  // Fully proportional: P(0) = 0.
  EXPECT_DOUBLE_EQ(ClusterEnergyModel(fully_proportional_params()).inelasticity(),
                   0.0);
  // No power management (95% idle, PUE 2.0): P(0)/P(1) =
  // (0.95 + 1) / (1 + 1) = 0.975.
  EXPECT_NEAR(ClusterEnergyModel(no_power_mgmt_params()).inelasticity(), 0.975,
              test::kNumericTol);
  // Google-like (65%, 1.3): (0.65 + 0.3) / (1 + 0.3) ~= 0.731.
  EXPECT_NEAR(ClusterEnergyModel(google_params()).inelasticity(), 0.95 / 1.3,
              test::kNumericTol);
}

TEST(EnergyModel, InelasticityOrderingAcrossPresets) {
  const double future = ClusterEnergyModel(optimistic_future_params()).inelasticity();
  const double google = ClusterEnergyModel(google_params()).inelasticity();
  const double sota = ClusterEnergyModel(state_of_the_art_params()).inelasticity();
  const double none = ClusterEnergyModel(no_power_mgmt_params()).inelasticity();
  EXPECT_LT(future, google);
  EXPECT_LT(google, sota);
  EXPECT_LT(sota, none);
}

TEST(EnergyModel, EnergyScalesWithDuration) {
  const ClusterEnergyModel model(google_params());
  const MegawattHours one = model.energy(0.4, 1000, Hours{1.0});
  const MegawattHours five_min = model.energy(0.4, 1000, Hours{1.0 / 12.0});
  EXPECT_NEAR(one.value(), five_min.value() * 12.0, test::kTightTol);
  EXPECT_THROW((void)model.energy(0.4, 10, Hours{-1.0}), std::invalid_argument);
  EXPECT_THROW((void)model.power(0.4, -1), std::invalid_argument);
}

TEST(EnergyModel, ParameterValidation) {
  EnergyModelParams p;
  p.peak_watts = -1.0;
  EXPECT_THROW(ClusterEnergyModel{p}, std::invalid_argument);
  p = EnergyModelParams{};
  p.idle_fraction = 1.5;
  EXPECT_THROW(ClusterEnergyModel{p}, std::invalid_argument);
  p = EnergyModelParams{};
  p.pue = 0.9;
  EXPECT_THROW(ClusterEnergyModel{p}, std::invalid_argument);
  p = EnergyModelParams{};
  p.exponent_r = 0.0;
  EXPECT_THROW(ClusterEnergyModel{p}, std::invalid_argument);
}

TEST(EnergyModel, Fig15ScenarioTable) {
  const auto scenarios = fig15_scenarios();
  ASSERT_EQ(scenarios.size(), 7u);
  EXPECT_EQ(scenarios[0].label, "(0%, 1.0)");
  EXPECT_DOUBLE_EQ(scenarios[0].idle_fraction, 0.0);
  EXPECT_DOUBLE_EQ(scenarios[0].pue, 1.0);
  EXPECT_EQ(scenarios[6].label, "(65%, 2.0)");
  // Inelasticity must be monotone across the scenario order.
  double prev = -1.0;
  for (const auto& s : scenarios) {
    EnergyModelParams p;
    p.idle_fraction = s.idle_fraction;
    p.pue = s.pue;
    const double inel = ClusterEnergyModel(p).inelasticity();
    EXPECT_GE(inel, prev) << s.label;
    prev = inel;
  }
}

/// Property sweep: linearity in server count for all presets.
class EnergyLinearity : public ::testing::TestWithParam<int> {};

TEST_P(EnergyLinearity, PowerLinearInServers) {
  const auto& s = fig15_scenarios()[static_cast<std::size_t>(GetParam())];
  EnergyModelParams p;
  p.idle_fraction = s.idle_fraction;
  p.pue = s.pue;
  const ClusterEnergyModel model(p);
  for (double u : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(model.power(u, 500).value(), 500.0 * model.power(u, 1).value(),
                test::kSumTol);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, EnergyLinearity, ::testing::Range(0, 7));

}  // namespace
}  // namespace cebis::energy
