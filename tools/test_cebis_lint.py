#!/usr/bin/env python3
"""Self-tests for tools/cebis_lint.py: every rule must fire on a
minimal fixture snippet and stay silent on the compliant twin, so the
linter itself can't silently rot. Run directly or via ctest
(cebis_lint_selftest):

  python3 tools/test_cebis_lint.py
"""

from __future__ import annotations

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import cebis_lint  # noqa: E402


def rules_at(rel: str, text: str) -> list[str]:
    """Rule ids cebis-lint reports for a file at repo-relative `rel`."""
    return [f.rule for f in cebis_lint.lint_file(rel, text)]


class WallClockRule(unittest.TestCase):
    SNIPPET = "auto t0 = std::chrono::steady_clock::now();\n"

    def test_fires_in_result_affecting_code(self):
        self.assertIn("wall-clock", rules_at("src/core/engine.cpp",
                                             self.SNIPPET))
        self.assertIn("wall-clock", rules_at("src/market/sim.cpp",
                                             self.SNIPPET))

    def test_system_clock_and_c_apis_fire_too(self):
        for line in ("std::chrono::system_clock::now();\n",
                     "gettimeofday(&tv, nullptr);\n",
                     "clock_gettime(CLOCK_MONOTONIC, &ts);\n",
                     "std::time(nullptr);\n"):
            self.assertIn("wall-clock", rules_at("src/core/x.cpp", line), line)

    def test_exempt_in_result_neutral_dirs(self):
        for rel in ("src/obs/trace.cpp", "src/io/export.cpp",
                    "src/net/socket.cpp"):
            self.assertEqual(rules_at(rel, self.SNIPPET), [])

    def test_comment_mentions_do_not_fire(self):
        text = "// steady_clock is banned here\nint x = 0;\n"
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_waiver_on_same_line(self):
        text = ("auto t0 = std::chrono::steady_clock::now();  "
                "// cebis-lint: allow(wall-clock) telemetry only\n")
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_waiver_on_preceding_line(self):
        text = ("// cebis-lint: allow(wall-clock) telemetry only\n"
                + self.SNIPPET)
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_waiver_without_reason_is_its_own_finding(self):
        text = ("// cebis-lint: allow(wall-clock)\n" + self.SNIPPET)
        rules = rules_at("src/core/x.cpp", text)
        self.assertIn("waiver-missing-reason", rules)
        self.assertIn("wall-clock", rules)  # and does not suppress

    def test_waiver_does_not_reach_two_lines_down(self):
        text = ("// cebis-lint: allow(wall-clock) telemetry only\n"
                "int unrelated = 0;\n" + self.SNIPPET)
        self.assertIn("wall-clock", rules_at("src/core/x.cpp", text))


class AmbientRandomnessRule(unittest.TestCase):
    def test_fires_everywhere_in_src(self):
        for rel in ("src/core/x.cpp", "src/obs/x.cpp", "src/net/x.cpp"):
            self.assertIn("ambient-randomness",
                          rules_at(rel, "std::random_device rd;\n"))
        self.assertIn("ambient-randomness",
                      rules_at("src/core/x.cpp", "int r = std::rand();\n"))
        self.assertIn("ambient-randomness",
                      rules_at("src/core/x.cpp", "srand(42);\n"))

    def test_seeded_rng_is_fine(self):
        text = "stats::Rng rng(seed);\nauto v = rng.uniform();\n"
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_identifiers_containing_rand_do_not_fire(self):
        text = "double operand = 1.0; int grand_total(); brand();\n"
        self.assertEqual(rules_at("src/core/x.cpp", text), [])


class UnorderedIterationRule(unittest.TestCase):
    DECL = "std::unordered_map<int, double> cache;\n"

    def test_declaration_fires_in_result_affecting_code(self):
        self.assertIn("unordered-iteration",
                      rules_at("src/billing/t.cpp", self.DECL))

    def test_declaration_allowed_in_result_neutral_dirs(self):
        self.assertEqual(rules_at("src/net/client.cpp", self.DECL), [])

    def test_ordered_map_is_fine(self):
        self.assertEqual(
            rules_at("src/core/x.cpp", "std::map<int, double> cache;\n"), [])

    def test_iteration_fires_even_in_exempt_dirs(self):
        text = (self.DECL +
                "for (const auto& kv : cache) { sum += kv.second; }\n")
        rules = rules_at("src/net/client.cpp", text)
        self.assertIn("unordered-iteration", rules)

    def test_begin_counts_as_iteration(self):
        text = self.DECL + "auto it = cache.begin();\n"
        self.assertIn("unordered-iteration",
                      rules_at("src/net/client.cpp", text))

    def test_lookup_only_use_in_exempt_dir_is_fine(self):
        text = self.DECL + "auto it = cache.find(3);\ncache.emplace(1, 2.0);\n"
        self.assertEqual(rules_at("src/net/client.cpp", text), [])

    def test_alias_iteration_is_tracked(self):
        text = ("using Cursor = std::unordered_map<int, long>;\n"
                "for (auto& kv : Cursor) {}\n")  # contrived but covered
        self.assertIn("unordered-iteration",
                      rules_at("src/net/client.cpp", text))


class ObsReadBackRule(unittest.TestCase):
    CALL = "auto snap = registry.snapshot();\n"

    def test_fires_in_instrumented_code(self):
        for rel in ("src/core/sim.cpp", "src/net/server.cpp",
                    "src/storage/ctl.cpp"):
            self.assertIn("obs-read-back", rules_at(rel, self.CALL))

    def test_allowed_in_obs_and_io(self):
        for rel in ("src/obs/metrics.cpp", "src/io/export.cpp"):
            self.assertEqual(rules_at(rel, self.CALL), [])

    def test_pointer_call_fires(self):
        self.assertIn("obs-read-back",
                      rules_at("src/core/x.cpp",
                               "io::write(reg->snapshot());\n"))

    def test_waiver_works(self):
        text = ("// cebis-lint: allow(obs-read-back) exposition endpoint\n"
                + self.CALL)
        self.assertEqual(rules_at("src/net/server.cpp", text), [])


class NodiscardResultRule(unittest.TestCase):
    def test_missing_nodiscard_fires_in_headers(self):
        text = "  RunResult run(const Spec& spec);\n"
        self.assertIn("nodiscard-result", rules_at("src/core/api.h", text))

    def test_annotated_declaration_passes(self):
        text = "  [[nodiscard]] RunResult run(const Spec& spec);\n"
        self.assertEqual(rules_at("src/core/api.h", text), [])

    def test_annotation_on_preceding_line_passes(self):
        text = ("  [[nodiscard]]\n"
                "  RunResult run(const Spec& spec);\n")
        self.assertEqual(rules_at("src/core/api.h", text), [])

    def test_qualified_return_type_fires(self):
        text = "  core::StorageOutcome outcome(int month);\n"
        self.assertIn("nodiscard-result", rules_at("src/storage/api.h", text))

    def test_constructors_do_not_fire(self):
        text = "  RunResult RunResult(const RunResult&);\n"
        self.assertEqual(rules_at("src/core/api.h", text), [])

    def test_member_fields_do_not_fire(self):
        text = "  RunResult result_;\n  HourlyEnergy energy_;\n"
        self.assertEqual(rules_at("src/core/api.h", text), [])

    def test_cpp_files_are_not_scanned(self):
        text = "RunResult run(const Spec& spec) { return do_run(spec); }\n"
        self.assertEqual(rules_at("src/core/api.cpp", text), [])

    def test_non_result_types_do_not_fire(self):
        text = "  double savings() const;\n  int count();\n"
        self.assertEqual(rules_at("src/core/api.h", text), [])


class UsingNamespaceRule(unittest.TestCase):
    def test_fires_in_src_cpp_and_all_headers(self):
        self.assertIn("using-namespace",
                      rules_at("src/core/x.cpp", "using namespace std;\n"))
        self.assertIn("using-namespace",
                      rules_at("src/core/x.h", "using namespace cebis;\n"))
        self.assertIn("using-namespace",
                      rules_at("bench/bench_common.h",
                               "using namespace cebis;\n"))

    def test_bench_translation_units_may(self):
        self.assertEqual(
            rules_at("bench/bench_fig01.cpp", "using namespace cebis;\n"), [])

    def test_using_declarations_are_fine(self):
        text = "using std::vector;\nusing Clock = int;\n"
        self.assertEqual(rules_at("src/core/x.cpp", text), [])


class ThreadDetachRule(unittest.TestCase):
    def test_fires_in_src(self):
        self.assertIn("thread-detach",
                      rules_at("src/net/server.cpp", "worker.detach();\n"))

    def test_join_is_fine(self):
        self.assertEqual(
            rules_at("src/net/server.cpp", "worker.join();\n"), [])


class HarnessBehavior(unittest.TestCase):
    def test_string_literals_do_not_fire(self):
        text = 'throw Error("steady_clock reads are banned");\n'
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_block_comments_do_not_fire(self):
        text = "/* std::random_device would break\n   determinism */\n"
        self.assertEqual(rules_at("src/core/x.cpp", text), [])

    def test_findings_are_sorted_and_formatted(self):
        text = "srand(1);\nstd::random_device rd;\n"
        findings = cebis_lint.lint_file("src/core/x.cpp", text)
        self.assertEqual([f.line for f in findings], [1, 2])
        self.assertTrue(str(findings[0]).startswith(
            "src/core/x.cpp:1: [ambient-randomness]"))

    def test_list_rules_exits_zero(self):
        self.assertEqual(cebis_lint.main(["--list-rules"]), 0)

    def test_main_is_clean_on_the_real_tree(self):
        # The acceptance gate, callable from anywhere: the shipped src/
        # tree must lint clean.
        self.assertEqual(cebis_lint.main([]), 0)


if __name__ == "__main__":
    unittest.main()
