#!/usr/bin/env python3
"""cebis-lint: the project-invariant linter for the cebis source tree.

clang-tidy (driven by the checked-in .clang-tidy) covers generic C++
defects; this linter enforces the contracts that are specific to cebis
and invisible to a generic checker. Each rule encodes a guarantee a
past PR established and CI pins only by sampling - the linter rejects
the *code shapes* that would break them, so a violation fails before a
golden anchor ever drifts:

  wall-clock          Result-affecting code (everything under src/
                      outside obs/, io/, net/) must not read wall
                      clocks (std::chrono::{system,steady,
                      high_resolution}_clock, ::time, gettimeofday,
                      clock_gettime). Simulated time comes from the
                      engine; a clock read in the hot path breaks the
                      byte-identical replay contract (PR 7) and the
                      parallel-sweep determinism contract (PR 6).
  ambient-randomness  No std::random_device / std::rand / srand
                      anywhere under src/. All randomness flows from
                      the seeded stats::Rng so every figure row is a
                      pure function of (seed, config) - the contract
                      behind every golden anchor since PR 1.
  unordered-iteration Result-affecting code must not declare
                      std::unordered_{map,set,multimap,multiset}
                      (hash-order iteration leaks into float
                      accumulation order and breaks byte-identity at
                      any thread count, PR 6), and no code under src/
                      may iterate one (range-for / .begin()) even in
                      the exempt dirs. Lookup-only use in obs/, io/,
                      net/ is fine.
  obs-read-back       obs:: taps are write-only instrumentation
                      (PR 8): MetricsRegistry::snapshot() may be
                      called from obs/ itself, io/ exposition, tests
                      and benches - never from instrumented code,
                      which must not make decisions from its own
                      telemetry.
  nodiscard-result    Functions declared in src/ headers that return a
                      result/report/outcome type (RunResult,
                      StorageOutcome, TariffBill, ...) must be
                      [[nodiscard]]: silently dropping a simulation
                      result is always a bug.
  using-namespace     No `using namespace` in src/ or in any header
                      (bench/example/test .cpp files may, they own
                      their translation unit).
  thread-detach       No std::thread::detach() under src/: every
                      thread the service spawns is joined on stop()
                      (PR 9's server/hub lifecycle); a detached thread
                      outlives its Impl and tears at exit.

Waivers: a finding on line N is suppressed by a comment on line N or
N-1 of the form

    // cebis-lint: allow(rule-id) <reason>

The reason is mandatory - an unexplained waiver is itself a finding
(`waiver-missing-reason`). Waive sparingly; each waiver documents why
the invariant holds anyway (e.g. SweepStats wall-clock telemetry that
never feeds a result field).

Usage:
  python3 tools/cebis_lint.py [--root REPO_ROOT] [paths ...]
  python3 tools/cebis_lint.py --list-rules

With no paths, lints src/ plus the headers under bench/, examples/ and
tests/ (header-scoped rules only). Exit 1 on any finding. Under GitHub
Actions (GITHUB_ACTIONS=true) findings are also emitted as ::error::
annotations, matching bench/check_bench_results.py.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pathlib
import re
import sys

# Directories under src/ whose code never affects simulation results:
# observability is write-only (PR 8), io/ is exposition/persistence
# formatting, net/ is transport whose payloads are produced elsewhere
# (timeouts and backoff there legitimately read real clocks).
RESULT_NEUTRAL_DIRS = {"obs", "io", "net"}

# Dirs allowed to call MetricsRegistry::snapshot(): the registry itself
# and the exposition writers. net/http_metrics.cpp is exposition too,
# but lives in net/ - it carries an explicit waiver instead, so the
# exemption stays narrow.
OBS_READ_DIRS = {"obs", "io"}

# Return types that carry a computation's result: dropping one is
# always a bug, so declarations returning them must be [[nodiscard]].
RESULT_TYPES = {
    "RunResult",
    "StorageOutcome",
    "SweepStats",
    "SavingsReport",
    "CarbonRunSummary",
    "WeatherRunSummary",
    "AggregationReport",
    "DrSettlement",
    "NegawattSettlement",
    "TariffBill",
    "MetricsSnapshot",
    "FeedReport",
    "ServerReport",
    "ForecastAccuracy",
    "HourlyEnergy",
    "Frame",
    "TelemetryFrame",
    "SealHeadroomFrame",
    "IngestStatusFrame",
    "RecordedSession",
    "LiveTelemetry",
    "Quartiles",
    "Summary",
    "ChangeStats",
    "PairCorrelation",
}

RULES = {
    "wall-clock": "wall-clock read in result-affecting code",
    "ambient-randomness": "ambient randomness source in src/",
    "unordered-iteration": "hash-ordered container in a determinism-relevant path",
    "obs-read-back": "obs snapshot() read from instrumented code",
    "nodiscard-result": "result-returning API missing [[nodiscard]]",
    "using-namespace": "`using namespace` in src/ or a header",
    "thread-detach": "detached thread in src/",
    "waiver-missing-reason": "cebis-lint waiver without a reason",
}

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock"
    r"|gettimeofday|clock_gettime|timespec_get)\b"
    r"|(?:\bstd::|::)time\s*\(")
RANDOMNESS_RE = re.compile(
    r"\brandom_device\b|\bstd::rand\b|\bsrand\s*\(|(?<![\w:])rand\s*\(\)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<")
SNAPSHOT_CALL_RE = re.compile(r"[.>]\s*snapshot\s*\(")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
WAIVER_RE = re.compile(r"cebis-lint:\s*allow\(([a-z\-,\s]+)\)\s*(.*)")
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|constexpr|inline|friend|explicit)\s+)*"
    r"(?:const\s+)?((?:\w+::)*(\w+))\s*&?\s+(\w+)\s*\(")


@dataclasses.dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_noncode(lines: list[str]) -> list[str]:
    """Returns `lines` with comments and string literals blanked out.

    Keeps line count and column positions roughly intact so findings
    point at real lines. Handles // and /* */ comments and double-
    quoted strings (good enough for this tree; raw strings spanning
    lines would need a real lexer and the tree has none in src/).
    """
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        in_str = False
        while i < len(line):
            ch = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
                continue
            if in_str:
                if ch == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if ch == '"':
                    in_str = False
                    buf.append('"')
                    i += 1
                    continue
                buf.append(" ")
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if ch == '"':
                in_str = True
                buf.append('"')
                i += 1
                continue
            if ch == "'" and nxt and i + 2 < len(line):
                # Skip char literals like '"' or '\\n' wholesale.
                j = i + 1
                if line[j] == "\\" and j + 2 < len(line):
                    j += 1
                if j + 1 < len(line) and line[j + 1] == "'":
                    buf.append(" " * (j + 2 - i))
                    i = j + 2
                    continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def collect_waivers(lines: list[str]) -> tuple[dict[int, set[str]], list[Finding]]:
    """Maps 1-based line numbers to the rule ids waived there.

    A waiver covers its own line and the next one, so it can sit on a
    dedicated comment line above the finding.
    """
    waived: dict[int, set[str]] = {}
    bad: list[tuple[int, str]] = []
    for idx, line in enumerate(lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2).strip()
        if not reason:
            bad.append((idx, ", ".join(sorted(rules))))
            continue
        for target in (idx, idx + 1):
            waived.setdefault(target, set()).update(rules)
    return waived, bad


def unordered_variable_names(code: list[str]) -> set[str]:
    """Names of variables/members/aliases declared with unordered types.

    Heuristic (no real parser): after each unordered_*<...> with
    balanced angle brackets on one line, take the next identifier; also
    tracks `using Alias = std::unordered_map<...>` alias names.
    """
    names: set[str] = set()
    alias_re = re.compile(r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_")
    for line in code:
        m = alias_re.search(line)
        if m:
            names.add(m.group(1))
        for decl in UNORDERED_DECL_RE.finditer(line):
            depth = 1
            i = decl.end()
            while i < len(line) and depth > 0:
                if line[i] == "<":
                    depth += 1
                elif line[i] == ">":
                    depth -= 1
                i += 1
            if depth != 0:
                continue  # template args continue on the next line
            m = re.match(r"\s*&?\s*(\w+)\s*[;,={(\[]", line[i:])
            if m:
                names.add(m.group(1))
    return names


def top_dir(rel: str) -> str:
    """First path component under src/ ('' when not under src/)."""
    parts = pathlib.PurePosixPath(rel).parts
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return ""


def lint_file(rel: str, text: str) -> list[Finding]:
    raw = text.splitlines()
    code = strip_noncode(raw)
    waived, bad_waivers = collect_waivers(raw)
    findings = [
        Finding(rel, line, "waiver-missing-reason",
                f"waiver for ({rules}) carries no justification - "
                "explain why the invariant holds anyway")
        for line, rules in bad_waivers
    ]

    in_src = rel.startswith("src/")
    is_header = rel.endswith(".h")
    subsystem = top_dir(rel)
    result_affecting = in_src and subsystem not in RESULT_NEUTRAL_DIRS

    def report(line_no: int, rule: str, message: str) -> None:
        if rule in waived.get(line_no, set()):
            return
        findings.append(Finding(rel, line_no, rule, message))

    unordered_names = unordered_variable_names(code) if in_src else set()

    for idx, line in enumerate(code, start=1):
        if in_src and result_affecting and WALL_CLOCK_RE.search(line):
            report(idx, "wall-clock",
                   "wall-clock read outside obs/, io/, net/ - simulated "
                   "time comes from the engine; real time in a result "
                   "path breaks replay-equals-live (PR 7)")
        if in_src and RANDOMNESS_RE.search(line):
            report(idx, "ambient-randomness",
                   "draw randomness from the seeded stats::Rng - results "
                   "must be a pure function of (seed, config)")
        if in_src and result_affecting and UNORDERED_DECL_RE.search(line):
            report(idx, "unordered-iteration",
                   "hash-ordered container in result-affecting code - "
                   "iteration order leaks into accumulation order and "
                   "breaks byte-identity (PR 6); use std::map/std::set "
                   "or waive with a lookup-only justification")
        if in_src and unordered_names:
            range_for = re.search(r"\bfor\s*\(.*:\s*(\w+)\s*\)", line)
            begin_call = re.search(r"\b(\w+)\s*\.\s*c?begin\s*\(", line)
            for m, what in ((range_for, "range-for over"),
                            (begin_call, ".begin() on")):
                if m and m.group(1) in unordered_names:
                    report(idx, "unordered-iteration",
                           f"{what} hash-ordered container "
                           f"'{m.group(1)}' - hash iteration order is "
                           "not deterministic across implementations")
        if (in_src and subsystem not in OBS_READ_DIRS
                and SNAPSHOT_CALL_RE.search(line)):
            report(idx, "obs-read-back",
                   "snapshot() read outside obs/ and io/ - taps are "
                   "write-only from instrumented code (PR 8); code must "
                   "not steer on its own telemetry")
        if (in_src or is_header) and USING_NAMESPACE_RE.search(line):
            report(idx, "using-namespace",
                   "`using namespace` leaks names into every includer "
                   "(header) or the whole library TU (src/)")
        if in_src and DETACH_RE.search(line):
            report(idx, "thread-detach",
                   "detached threads outlive their owner and tear at "
                   "exit - join on stop() like Server/SubscriberHub")
        if in_src and is_header:
            m = NODISCARD_DECL_RE.match(line)
            if m and m.group(2) in RESULT_TYPES and m.group(3) != m.group(2):
                has_attr = "[[nodiscard]]" in raw[idx - 1] or (
                    idx >= 2 and "[[nodiscard]]" in raw[idx - 2])
                if not has_attr:
                    report(idx, "nodiscard-result",
                           f"'{m.group(3)}' returns {m.group(2)} - mark "
                           "it [[nodiscard]]: a dropped result is "
                           "always a bug")
    return findings


def default_paths(root: pathlib.Path) -> list[pathlib.Path]:
    paths = sorted((root / "src").rglob("*.cpp")) + sorted(
        (root / "src").rglob("*.h"))
    for extra in ("bench", "examples", "tests"):
        d = root / extra
        if d.is_dir():
            paths.extend(sorted(d.rglob("*.h")))
    return paths


def lint_paths(root: pathlib.Path,
               paths: list[pathlib.Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        findings.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cebis project-invariant linter")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files to lint (default: src/ + repo headers)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule}: {summary}")
        return 0

    paths = args.paths or default_paths(args.root)
    findings = lint_paths(args.root, paths)
    annotate = os.environ.get("GITHUB_ACTIONS") == "true"
    for f in findings:
        print(f)
        if annotate:
            print(f"::error file={f.path},line={f.line}::[{f.rule}] "
                  f"{f.message}")
    n_files = len(paths)
    if findings:
        print(f"cebis-lint: {len(findings)} finding(s) in {n_files} files")
        return 1
    print(f"cebis-lint: clean ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
