// Microbenchmarks (google-benchmark): live service mode throughput.
//
// BM_LiveIngest drives a full LiveEngine session - tick ingestion,
// seal-gated stepping, event logging to /dev/null-equivalent tmp file -
// and reports ticks/second; BM_LogReplay measures re-running a recorded
// log through the batch engine; BM_EventLogScan isolates the binary
// format itself (read + CRC of every frame).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "service/event_log.h"
#include "service/live_engine.h"
#include "service/replay.h"

namespace {

using namespace cebis;

const core::Fixture& fixture() {
  static const core::Fixture fx = core::Fixture::make(2009);
  return fx;
}

std::string tmp_log_path() {
  static const std::string path = [] {
    const char* dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") +
           "/cebis_bench_service.eventlog";
  }();
  return path;
}

service::LiveConfig live_config(const core::Fixture& fx, std::int64_t hours) {
  service::LiveConfig config;
  config.router = "price-aware";
  const Period trace = fx.trace.period();
  config.period = Period{trace.begin, trace.begin + hours};
  config.steps_per_hour = 12;
  config.samples_per_hour = 12;
  config.shadow_baseline = false;
  return config;
}

/// Drives one whole live session; returns the tick count.
std::int64_t drive(const core::Fixture& fx, const service::LiveConfig& config,
                   service::EventLogWriter* log) {
  service::LiveEngine live(fx, config, log);
  const int sph = config.samples_per_hour;
  const Period priced{config.period.begin - config.delay_hours,
                      config.period.end};
  const market::PriceSet& feed = fx.prices_covering(priced, sph);

  std::vector<HubId> hubs;
  for (const core::Cluster& c : fx.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }
  const core::TraceWorkload demand_feed(fx.trace, fx.allocation);
  std::vector<double> demand(demand_feed.state_count(), 0.0);

  std::int64_t ticks = 0;
  for (std::int64_t interval = priced.begin * sph;
       interval < config.period.end * sph; ++interval) {
    const HourIndex hour = interval / sph;
    const int sub = static_cast<int>(interval - hour * sph);
    for (const HubId hub : hubs) {
      live.on_price_tick(hub, interval, feed.rt_at(hub, hour, sub).value());
      ++ticks;
    }
    while (!live.done() && live.needed_end() <= live.sealed_end()) {
      demand_feed.demand(live.steps_done(), demand);
      live.advance(demand);
    }
  }
  benchmark::DoNotOptimize(live.finish().total_cost.value());
  return ticks;
}

void BM_LiveIngest(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const service::LiveConfig config = live_config(fx, state.range(0));
  // Materialize the lazy price history outside the timed loop - the
  // bench measures ingest, not first-touch synthesis.
  (void)fx.prices_covering(Period{config.period.begin - config.delay_hours,
                                  config.period.end},
                           config.samples_per_hour);
  std::int64_t ticks = 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    service::EventLogWriter log(tmp_log_path());
    ticks += drive(fx, config, &log);
    steps += config.period.hours() * config.steps_per_hour;
  }
  state.SetItemsProcessed(ticks);  // items/s = ticks ingested per second
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
  std::remove(tmp_log_path().c_str());
}
BENCHMARK(BM_LiveIngest)->Arg(24)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_LogReplay(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const service::LiveConfig config = live_config(fx, state.range(0));
  {
    service::EventLogWriter log(tmp_log_path());
    (void)drive(fx, config, &log);
    log.close();
  }
  std::int64_t steps = 0;
  for (auto _ : state) {
    const core::RunResult result = service::replay_file(fx, tmp_log_path());
    benchmark::DoNotOptimize(result.total_cost.value());
    steps += config.period.hours() * config.steps_per_hour;
  }
  state.SetItemsProcessed(steps);  // items/s = steps replayed per second
  std::remove(tmp_log_path().c_str());
}
BENCHMARK(BM_LogReplay)->Arg(24)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_EventLogScan(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const service::LiveConfig config = live_config(fx, 96);
  {
    service::EventLogWriter log(tmp_log_path());
    (void)drive(fx, config, &log);
    log.close();
  }
  std::int64_t frames = 0;
  for (auto _ : state) {
    service::EventLogReader reader(tmp_log_path());
    while (const auto record = reader.next()) {
      benchmark::DoNotOptimize(record->index());
      ++frames;
    }
  }
  state.SetItemsProcessed(frames);  // items/s = frames decoded per second
  std::remove(tmp_log_path().c_str());
}
BENCHMARK(BM_EventLogScan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
