// Microbenchmarks (google-benchmark): network transport throughput.
//
// BM_IngestThroughput drives a complete socket-fed session - FeedClient
// over loopback TCP into a real net::Server (frame encode, CRC, kernel
// round trip, strict decode, event logging, seal-gated stepping) - and
// reports ticks/second; the in-process ceiling is BM_LiveIngest in
// bench_perf_service, so the gap between the two is the wire tax.
// BM_SubscriberFanout measures the SubscriberHub pushing decision
// frames to 8 draining subscribers and reports delivered frames/second.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/workload.h"
#include "net/feed_client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/subscriber_hub.h"
#include "net/wire.h"
#include "service/event_log.h"

namespace {

using namespace cebis;

const core::Fixture& fixture() {
  static const core::Fixture fx = core::Fixture::make(2009);
  return fx;
}

std::string tmp_log_path() {
  static const std::string path = [] {
    const char* dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") +
           "/cebis_bench_net.eventlog";
  }();
  return path;
}

struct SessionFeed {
  service::SessionMeta meta;
  std::vector<service::PriceTickRecord> ticks;
  std::vector<service::WorkloadStepRecord> steps;
};

/// The feed cebis_feed would synthesize over the first `hours`,
/// materialized up front so the timed loop measures transport + ingest.
SessionFeed make_feed(const core::Fixture& fx, std::int64_t hours) {
  SessionFeed feed;
  const Period trace = fx.trace.period();
  const Period window{trace.begin, trace.begin + hours};
  const core::TraceWorkload demand(fx.trace, fx.allocation);

  feed.meta.seed = fx.seed;
  feed.meta.router = "price-aware";
  feed.meta.period = window;
  feed.meta.steps_per_hour = demand.steps_per_hour();
  feed.meta.samples_per_hour = 12;

  const int sph = feed.meta.samples_per_hour;
  const Period priced{window.begin - feed.meta.delay_hours, window.end};
  const market::PriceSet& prices = fx.prices_covering(priced, sph);
  std::vector<HubId> hubs;
  for (const core::Cluster& c : fx.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }
  for (std::int64_t interval = priced.begin * sph;
       interval < window.end * sph; ++interval) {
    const HourIndex hour = interval / sph;
    const int sub = static_cast<int>(interval - hour * sph);
    for (const HubId hub : hubs) {
      feed.ticks.push_back({hub, interval, prices.rt_at(hub, hour, sub).value()});
    }
  }
  const std::int64_t steps = window.hours() * feed.meta.steps_per_hour;
  std::vector<double> row(demand.state_count(), 0.0);
  for (std::int64_t j = 0; j < steps; ++j) {
    demand.demand(j, row);
    feed.steps.push_back({j, row});
  }
  return feed;
}

void BM_IngestThroughput(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const SessionFeed feed = make_feed(fx, state.range(0));
  std::int64_t ticks = 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    net::ServerOptions options;
    options.log_path = tmp_log_path();
    options.fixture = &fx;  // measure transport, not fixture synthesis
    options.shadow_baseline = false;
    net::Server server(options);
    net::ServerReport report;
    std::thread serving([&] { report = server.serve(); });
    net::FeedClientOptions client_options;
    client_options.port = server.ingest_port();
    net::FeedClient client(client_options);
    (void)client.run(feed.meta, feed.ticks, feed.steps);
    serving.join();
    benchmark::DoNotOptimize(report.result->total_cost.value());
    ticks += report.ticks_ingested;
    steps += report.steps_ingested;
  }
  state.SetItemsProcessed(ticks);  // items/s = ticks ingested per second
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  std::remove(tmp_log_path().c_str());
}
BENCHMARK(BM_IngestThroughput)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_SubscriberFanout(benchmark::State& state) {
  const int kSubscribers = 8;
  net::SubscriberHubOptions options;
  options.queue_capacity = 1024;
  net::SubscriberHub hub(options);

  // 8 draining subscribers, alive across all iterations; each reads
  // frames until the hub closes its socket at stop().
  std::vector<std::thread> readers;
  for (int i = 0; i < kSubscribers; ++i) {
    readers.emplace_back([port = hub.port()] {
      try {
        net::Socket sock = net::connect_to("127.0.0.1", port, 2000);
        net::write_stream_header(sock, net::Channel::kSubscribe, 2000);
        net::FrameReader reader(sock);
        while (reader.next(10'000).has_value()) {
        }
      } catch (const net::NetError&) {
      } catch (const service::EventLogError&) {
      }
    });
  }
  while (hub.subscriber_count() < static_cast<std::size_t>(kSubscribers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A realistic per-step frame: a 10-cluster routing decision.
  service::RoutingDecisionRecord decision;
  decision.step = 0;
  decision.cluster_load.assign(10, 1234.5);
  const std::vector<std::uint8_t> payload =
      service::encode_record(service::EventRecord{decision});
  const std::uint8_t type =
      static_cast<std::uint8_t>(service::RecordType::kRoutingDecision);

  constexpr int kFramesPerIteration = 2000;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < kFramesPerIteration; ++i) {
      hub.publish(type, payload);
    }
    (void)hub.drain(10'000);
    delivered += static_cast<std::int64_t>(kFramesPerIteration) * kSubscribers;
  }
  // items/s = frames delivered per second across the 8 subscribers
  // (queued drops subtracted - a dropped frame was not delivered).
  state.SetItemsProcessed(delivered - hub.dropped_frames());
  state.counters["dropped_frames"] =
      benchmark::Counter(static_cast<double>(hub.dropped_frames()));
  hub.stop();
  for (std::thread& t : readers) t.join();
}
BENCHMARK(BM_SubscriberFanout)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
