// Ablation: where do the savings come from? Regenerates the market with
// spike/scarcity processes disabled (leaving base levels, diurnals and
// factor volatility) and re-runs the headline experiment. The residual
// savings measure how much of the paper's effect needs price *spikes*
// versus plain level differences and diurnal structure.

#include <vector>

#include "bench_common.h"
#include "market/market_simulator.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: spike model",
                "24-day savings with the full market vs a spike-free market "
                "((0%,1.1) and google models, 1500 km, relax 95/5)");

  // Build a second fixture whose prices come from a spike-free market.
  market::PriceModelParams calm = market::PriceModelParams::defaults();
  calm.spikes.onset_per_hour = 0.0;
  calm.spikes.rto_event_per_hour = 0.0;
  calm.spikes.scarcity_per_hour = 0.0;
  const market::MarketSimulator calm_sim(market::HubRegistry::instance(), calm,
                                         seed);

  core::Fixture fx = core::Fixture::make(seed);
  core::Fixture fx_calm = core::Fixture::make(seed);
  fx_calm.set_prices(calm_sim.generate(study_period()));

  io::Table table({"energy model", "savings full (%)", "savings no-spikes (%)"});
  io::CsvWriter csv(bench::csv_path("ablation_spike_model"));
  csv.row({"energy_model", "savings_full_pct", "savings_nospike_pct"});

  struct Row {
    const char* label;
    energy::EnergyModelParams params;
  };
  const Row rows[] = {
      {"(0%, 1.1)", energy::optimistic_future_params()},
      {"(65%, 1.3)", energy::google_params()},
  };
  for (const Row& row : rows) {
    const core::ScenarioSpec spec{
        .router = "price-aware",
        .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
        .energy = row.params,
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
    };
    const double full = core::scenario_savings(fx, spec).savings_percent;
    const double nospike = core::scenario_savings(fx_calm, spec).savings_percent;
    char f_s[16], n_s[16];
    std::snprintf(f_s, sizeof(f_s), "%.2f", full);
    std::snprintf(n_s, sizeof(n_s), "%.2f", nospike);
    table.add_row({row.label, f_s, n_s});
    csv.row({row.label, io::format_number(full, 3), io::format_number(nospike, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: most of the savings come from persistent level differences\n"
      "and diurnal/factor volatility; spikes add the remainder. This backs\n"
      "the paper's framing that *uncorrelated variation*, not just rare\n"
      "events, powers price-aware routing.\n");
  std::printf("CSV: %s\n", bench::csv_path("ablation_spike_model").c_str());
  return 0;
}
