// Ablation: routing on forecasts instead of stale prices.
//
// Fig 20 shows the cost of reacting to the previous hour's prices. An
// operator can do better without faster market data: forecast the next
// hour from the hour-of-week profile and the last observation. This
// bench quantifies how much of the delay penalty a simple forecaster
// recovers.

#include "bench_common.h"
#include "core/observers.h"
#include "market/forecast.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: forecast-based routing",
                "24-day trace, (65%, 1.3), 1500 km: perfect info vs stale "
                "prices vs one-hour-ahead forecasts");

  const core::Fixture& fx = bench::fixture(seed);

  core::ScenarioSpec s{
      .router = "price-aware",
      .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  // Perfect (delay 0) and stale (delay 1) routing.
  s.delay_hours = 0;
  const double perfect = core::run_scenario(fx, s).total_cost.value();
  s.delay_hours = 1;
  const double stale = core::run_scenario(fx, s).total_cost.value();

  // Forecast-based: route on one-hour-ahead forecasts (information lag
  // baked in), bill real dollars through a secondary meter.
  const Period window = trace_period();
  const Period training{window.begin - 56 * 24, window.begin};
  const market::PriceSet forecasts =
      market::one_hour_ahead_forecasts(fx.prices(), training, window);

  core::ScenarioSpec forecast_spec = s;
  forecast_spec.delay_hours = 0;  // the forecast set already encodes the lag
  forecast_spec.routing_prices = &forecasts;
  core::SecondaryMeter dollars(fx.prices());
  forecast_spec.observers.push_back(&dollars);
  (void)core::run_scenario(fx, forecast_spec);
  const double forecast_cost = dollars.total();

  // Forecast accuracy context.
  const market::PriceForecaster forecaster(fx.prices(), training);
  const HubId nyc = market::HubRegistry::instance().by_code("NYC");
  const auto acc =
      market::evaluate_forecaster(fx.prices(), forecaster, nyc, window);

  io::Table table({"routing information", "24-day cost ($)", "vs perfect (%)"});
  auto row = [&table, perfect](const char* label, double cost) {
    char c[24], d[16];
    std::snprintf(c, sizeof(c), "%.0f", cost);
    std::snprintf(d, sizeof(d), "%+.3f", 100.0 * (cost / perfect - 1.0));
    table.add_row({label, c, d});
  };
  row("perfect (delay 0)", perfect);
  row("stale (delay 1, the paper's setup)", stale);
  row("one-hour-ahead forecast", forecast_cost);
  std::printf("%s\n", table.render().c_str());

  const double recovered =
      stale > perfect
          ? 100.0 * (stale - forecast_cost) / (stale - perfect)
          : 0.0;
  std::printf("forecaster MAE at NYC: %.1f $/MWh (persistence %.1f, raw "
              "profile %.1f)\n",
              acc.mae_forecast, acc.mae_persistence, acc.mae_profile);
  std::printf("delay penalty recovered by forecasting: %.0f%%\n", recovered);
  std::printf(
      "Reading: in this market, one-hour persistence is already close to\n"
      "optimal at the hourly scale - the hour-of-week profile adds little,\n"
      "so forecasting recovers only a sliver of Fig 20's delay penalty.\n"
      "Faster market data (delay 0 / 5-minute feeds) is the bigger lever,\n"
      "matching Fig 20's initial jump.\n");

  io::CsvWriter csv(bench::csv_path("ablation_forecast_routing"));
  csv.row({"policy", "cost_usd"});
  csv.row({"perfect", io::format_number(perfect, 2)});
  csv.row({"stale_1h", io::format_number(stale, 2)});
  csv.row({"forecast", io::format_number(forecast_cost, 2)});
  std::printf("CSV: %s\n", bench::csv_path("ablation_forecast_routing").c_str());
  return 0;
}
