// Fig 20: impact of reaction delays on electricity cost for the
// (65% idle, 1.3 PUE) model at a 1500 km threshold. Shape: a jump from
// immediate to next-hour reaction, growth toward ~1-1.5%, and a local
// minimum at 24 hours (day-ahead autocorrelation).

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 20",
                "Cost increase vs price-reaction delay, (65% idle, 1.3 "
                "PUE), 1500 km threshold, 24-day trace");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<int> delays = {0,  1,  2,  3,  6,  9,  12, 15,
                                   18, 21, 23, 24, 25, 27, 30};

  std::vector<core::ScenarioSpec> specs;
  for (const int delay : delays) {
    specs.push_back(core::ScenarioSpec{
        .router = "price-aware",
        .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
        .energy = energy::google_params(),
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
        .delay_hours = delay,
    });
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs);
  const double fresh = runs[0].total_cost.value();

  io::Table table({"delay (h)", "cost increase (%)"});
  io::CsvWriter csv(bench::csv_path("fig20_reaction_delay"));
  csv.row({"delay_hours", "cost_increase_pct"});

  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double increase = 100.0 * (runs[i].total_cost.value() / fresh - 1.0);
    char d_s[8], i_s[16];
    std::snprintf(d_s, sizeof(d_s), "%d", delays[i]);
    std::snprintf(i_s, sizeof(i_s), "%.3f", increase);
    table.add_row({d_s, i_s});
    csv.row({std::to_string(delays[i]), io::format_number(increase, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape: visible jump between immediate and next-hour reaction\n"
      "(the paper's simulations conservatively assume a 1-hour delay), a\n"
      "rise toward ~1-1.5%%, and a local dip at the 24-hour mark where\n"
      "day-over-day price correlation helps.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig20_reaction_delay").c_str());
  return 0;
}
