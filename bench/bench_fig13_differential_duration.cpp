// Fig 13: durations of sustained PaloAlto-Virginia price differentials
// (favoured by more than $5/MWh). Short differentials dominate; day-plus
// runs are rare.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/timeseries.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 13",
                "Fraction of favoured time by differential duration, "
                "PaloAlto-Virginia, threshold $5/MWh");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();
  const auto diff = market::differential(prices, hubs, "NP15", "DOM");

  const auto runs = stats::differential_runs(diff, 5.0);
  const auto fractions = stats::duration_time_fractions(runs, 37);

  io::CsvWriter csv(bench::csv_path("fig13_differential_duration"));
  csv.row({"duration_hours", "fraction_of_time"});
  std::printf("duration(h)  fraction\n");
  for (std::size_t len = 0; len < fractions.size(); ++len) {
    csv.row({std::to_string(len + 1), io::format_number(fractions[len], 5)});
    if (len < 16 || fractions[len] > 0.005) {
      std::printf("  %4zu       %.3f %s\n", len + 1, fractions[len],
                  std::string(static_cast<std::size_t>(fractions[len] * 200), '#')
                      .c_str());
    }
  }

  double short_mass = fractions[0] + fractions[1] + fractions[2];
  double medium_mass = 0.0;
  for (std::size_t i = 3; i < 9; ++i) medium_mass += fractions[i];
  double day_plus = 0.0;
  for (std::size_t i = 23; i < fractions.size(); ++i) day_plus += fractions[i];
  std::printf("\n<3h: %.0f%%  3-9h: %.0f%%  >24h: %.0f%%  [paper: short "
              "differentials most frequent, day-plus rare]\n",
              100.0 * short_mass, 100.0 * medium_mass, 100.0 * day_plus);
  std::printf("runs observed: %zu over %zu favoured hours\n", runs.size(),
              static_cast<std::size_t>([&] {
                double h = 0.0;
                for (const auto& r : runs) h += static_cast<double>(r.length);
                return h;
              }()));
  std::printf("CSV: %s\n", bench::csv_path("fig13_differential_duration").c_str());
  return 0;
}
