// Extension: battery-backed energy storage under a demand-charge tariff
// (beyond the paper: the paper shifts load in *space*; a battery shifts
// it in *time* - Urgaonkar et al. arXiv:1103.3099 for the online
// charge/discharge policy, Xu & Li arXiv:1307.5442 for why peak-kW
// demand charges change the objective).
//
// Runs the 24-day trace with price-aware routing and a battery behind
// the meter at every cluster, sweeping the three built-in policies and
// battery sizes, and compares each cell's tariff bill against the
// zero-battery baseline of the identical scenario.

#include <string_view>
#include <vector>

#include "bench_common.h"
#include "storage/storage_controller.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: battery arbitrage & peak shaving",
                "24-day trace, google-like elasticity, 1500 km threshold, "
                "wholesale-indexed energy + $12/kW-month demand charge");

  const core::Fixture& fx = bench::fixture(seed);
  core::ScenarioSpec spec{
      .router = "price_aware+storage",
      .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
  core::StorageSpec st;
  st.tariff.demand_usd_per_kw_month = Usd{12.0};
  spec.storage = st;

  // The zero-battery reference (raw == net) also yields the mean loads
  // the per-cluster batteries are sized from.
  const core::RunResult zero = core::run_scenario(fx, spec);
  const double hours = static_cast<double>(trace_period().hours());
  const double raw_bill = zero.storage.net_total().value();
  std::printf("no-battery bill: $%.0f  (energy $%.0f + demand $%.0f)\n\n",
              raw_bill, zero.storage.net_energy.value(),
              zero.storage.net_demand.value());

  io::Table table({"policy", "battery", "energy $", "demand $", "total $",
                   "saved $", "saved %", "cycled MWh"});
  bench::TimedCsv csv(bench::csv_path("ext_battery_arbitrage"));
  csv.header({"policy", "hours_of_storage", "energy_usd", "demand_usd",
              "total_usd", "saved_usd", "saved_pct", "discharged_mwh"});

  const char* policies[] = {"arbitrage", "peak-shaving", "lyapunov"};
  for (const char* policy : policies) {
    for (const double storage_hours : {2.0, 4.0, 8.0}) {
      core::ScenarioSpec cell = spec;
      cell.storage->policy = policy;
      if (std::string_view(policy) == "peak-shaving") {
        // Routed cluster loads are nearly flat (peak ~1.13x mean), so
        // shave toward the slow rolling mean itself; batteries arrive
        // half charged so the first days' peaks are shavable too.
        cell.storage->policy_config =
            storage::PeakShavingConfig{.window_hours = 72.0};
      }
      for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
        storage::BatteryParams battery = storage::battery_for_mean_load(
            zero.cluster_energy[c] / hours, storage_hours);
        if (std::string_view(policy) == "peak-shaving") {
          battery.initial_soc_fraction = 0.5;
        }
        cell.storage->per_cluster.push_back(battery);
      }
      const core::RunResult run = core::run_scenario(fx, cell);
      const auto& o = run.storage;
      const double saved = raw_bill - o.net_total().value();
      char b[8][32];
      std::snprintf(b[0], sizeof(b[0]), "%.0fh", storage_hours);
      std::snprintf(b[1], sizeof(b[1]), "%.0f", o.net_energy.value());
      std::snprintf(b[2], sizeof(b[2]), "%.0f", o.net_demand.value());
      std::snprintf(b[3], sizeof(b[3]), "%.0f", o.net_total().value());
      std::snprintf(b[4], sizeof(b[4]), "%.0f", saved);
      std::snprintf(b[5], sizeof(b[5]), "%.2f", 100.0 * saved / raw_bill);
      std::snprintf(b[6], sizeof(b[6]), "%.1f", o.discharged_mwh);
      table.add_row({policy, b[0], b[1], b[2], b[3], b[4], b[5], b[6]});
      csv.row({policy, io::format_number(storage_hours, 0),
               io::format_number(o.net_energy.value(), 2),
               io::format_number(o.net_demand.value(), 2),
               io::format_number(o.net_total().value(), 2),
               io::format_number(saved, 2),
               io::format_number(100.0 * saved / raw_bill, 3),
               io::format_number(o.discharged_mwh, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: arbitrage and the Lyapunov policy monetize the *temporal*\n"
      "price structure the router cannot reach (charging cheap night hours,\n"
      "serving load through spikes), while peak shaving attacks the demand\n"
      "charge itself; the peak guard throttles charging against the month's\n"
      "established billed-demand level (exact on hourly workloads, within a\n"
      "fraction of a percent on this 5-minute trace).\n");
  std::printf("CSV: %s\n", bench::csv_path("ext_battery_arbitrage").c_str());
  return 0;
}
