// Fig 1: estimated annual electricity costs for large companies at
// $60/MWh wholesale, from the paper's back-of-the-envelope model (§2.1).

#include "bench_common.h"
#include "energy/fleet_estimator.h"

int main() {
  using namespace cebis;
  bench::header("Figure 1",
                "Estimated annual electricity costs (servers and "
                "infrastructure) @ $60/MWh");

  io::Table table({"company", "servers", "MWh/yr", "cost/yr"});
  io::CsvWriter csv(bench::csv_path("fig01_fleet_costs"));
  csv.row({"company", "servers", "mwh_per_year", "usd_per_year"});

  for (const auto& fleet : energy::fig1_fleets()) {
    const double mwh = energy::annual_energy(fleet).value();
    const double usd = energy::annual_cost(fleet, energy::kFig1Rate).value();
    char servers[32];
    char mwh_s[32];
    char usd_s[32];
    std::snprintf(servers, sizeof(servers), "%.2gM",
                  fleet.servers / 1e6);
    if (fleet.servers < 1e6) {
      std::snprintf(servers, sizeof(servers), "%.0fK", fleet.servers / 1e3);
    }
    std::snprintf(mwh_s, sizeof(mwh_s), "%.2g x10^5", mwh / 1e5);
    std::snprintf(usd_s, sizeof(usd_s), "$%.1fM", usd / 1e6);
    if (usd >= 1e9) std::snprintf(usd_s, sizeof(usd_s), "$%.1fB", usd / 1e9);
    table.add_row({std::string(fleet.name), servers, mwh_s, usd_s});
    csv.row({std::string(fleet.name), io::format_number(fleet.servers, 0),
             io::format_number(mwh, 0), io::format_number(usd, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reference: eBay ~$3.7M, Akamai ~$10M, Rackspace ~$12M,\n"
              "Microsoft >$36M, Google >$38M, USA $4.5B (retail rates).\n");
  std::printf("CSV: %s\n", bench::csv_path("fig01_fleet_costs").c_str());
  return 0;
}
