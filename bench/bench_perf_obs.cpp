// Microbenchmarks (google-benchmark): the observability layer's
// overhead contract.
//
// BM_ObsOverhead is the gate: each iteration runs the instrumented
// 24-day price-aware simulation twice - once uninstrumented, once with
// a MetricsRegistry attached (no tracer; span timestamps cost clock
// reads by design and are opt-in) - and reports the enabled/disabled
// wall-clock ratio as the `overhead_ratio` counter.
// check_bench_results.py soft-warns when it exceeds 1.02 (the < 2%
// contract from the obs layer's design). The run's deterministic
// counters (plan rebuilds per run, materialized price-history hours)
// ride along and are gated exactly via "deterministic_counters" in
// BENCH_perf.json - they drift only when the routing or lazy-history
// machinery changes behaviour.
//
// BM_Run24Day/0 and /1 pin the absolute times of the two legs;
// BM_CounterAdd / BM_HistogramObserve pin the per-update cost of the
// hot handles; BM_SnapshotPrometheus pins the exposition path.
//
// The custom main() additionally drives one traced + metered run after
// the benchmarks and drops a Prometheus text snapshot plus a Chrome
// trace JSON next to the results (CEBIS_OBS_ARTIFACTS, default ".") -
// the Release CI leg uploads both as workflow artifacts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "io/metrics_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace cebis;

const core::Fixture& fixture() {
  static const core::Fixture fx = core::Fixture::make(2009);
  return fx;
}

core::ScenarioSpec spec_24day() {
  core::ScenarioSpec spec;
  spec.router = "price-aware";
  spec.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
  spec.energy = energy::google_params();
  spec.workload = core::WorkloadKind::kTrace24Day;
  return spec;
}

/// One serial 24-day sweep cell, optionally metered. threads = 1 keeps
/// the measurement free of pool scheduling noise.
double run_24day(const core::Fixture& fx, obs::MetricsRegistry* metrics) {
  const core::ScenarioSpec specs[] = {spec_24day()};
  core::SweepOptions options;
  options.threads = 1;
  options.taps.metrics = metrics;
  return core::run_scenarios(fx, specs, options)[0].total_cost.value();
}

void BM_Run24Day(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  (void)run_24day(fx, nullptr);  // materialize the lazy price history
  const bool metered = state.range(0) != 0;
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_24day(fx, metered ? &reg : nullptr));
  }
  state.SetLabel(metered ? "metrics:on" : "metrics:off");
}
BENCHMARK(BM_Run24Day)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ObsOverhead(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  (void)run_24day(fx, nullptr);
  obs::MetricsRegistry reg;
  using clock = std::chrono::steady_clock;
  double off_s = 0.0;
  double on_s = 0.0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    const clock::time_point t0 = clock::now();
    benchmark::DoNotOptimize(run_24day(fx, nullptr));
    const clock::time_point t1 = clock::now();
    benchmark::DoNotOptimize(run_24day(fx, &reg));
    const clock::time_point t2 = clock::now();
    off_s += std::chrono::duration<double>(t1 - t0).count();
    on_s += std::chrono::duration<double>(t2 - t1).count();
    ++runs;
  }
  state.counters["overhead_ratio"] = off_s > 0.0 ? on_s / off_s : 0.0;

  // Deterministic per-run counters: exact properties of the code path,
  // gated via "deterministic_counters" in BENCH_perf.json.
  const obs::MetricsSnapshot snap = reg.snapshot();
  state.counters["plan_rebuilds_per_run"] =
      snap.value_or("cebis_router_plan_rebuilds_total", 0.0,
                    {{"router", "price-aware"}}) /
      static_cast<double>(runs);
  state.counters["materialized_hours"] =
      snap.value_or("cebis_price_history_materialized_hours", 0.0);
}
BENCHMARK(BM_ObsOverhead)->Unit(benchmark::kMillisecond);

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("bench_counter_total", "per-update cost");
  for (auto _ : state) {
    c.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  const std::vector<double> bounds =
      obs::MetricsRegistry::linear_bounds(0.0, 10.0, 0.5);
  obs::Histogram h = reg.histogram("bench_hist", "per-observe cost", bounds);
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.37;
    if (v > 12.0) v = 0.0;  // exercise every bucket incl. overflow
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_SnapshotPrometheus(benchmark::State& state) {
  // ~120 series across kinds: the shape a real sweep registry ends up
  // with (engine counters x routers, per-worker series, histograms).
  obs::MetricsRegistry reg;
  const std::vector<double> bounds =
      obs::MetricsRegistry::linear_bounds(0.0, 10.0, 0.5);
  for (int i = 0; i < 50; ++i) {
    reg.counter("bench_c", "c", {{"i", std::to_string(i)}}).add(double(i));
    reg.gauge("bench_g", "g", {{"i", std::to_string(i)}}).set(double(i));
  }
  for (int i = 0; i < 20; ++i) {
    obs::Histogram h =
        reg.histogram("bench_h", "h", bounds, {{"i", std::to_string(i)}});
    h.observe(double(i % 11));
  }
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const std::string text = io::to_prometheus_text(reg.snapshot());
    benchmark::DoNotOptimize(text.data());
    bytes += static_cast<std::int64_t>(text.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SnapshotPrometheus)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Artifact pass: one fully tapped (metrics + tracer) 24-day run,
  // dumped as a Prometheus snapshot and a Perfetto-loadable trace.
  const char* dir = std::getenv("CEBIS_OBS_ARTIFACTS");
  const std::string out = dir != nullptr ? dir : ".";
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  const core::ScenarioSpec specs[] = {spec_24day()};
  core::SweepOptions options;
  options.threads = 1;
  options.taps.metrics = &reg;
  options.taps.tracer = &tracer;
  (void)core::run_scenarios(fixture(), specs, options);
  io::write_prometheus_file(reg.snapshot(), out + "/bench_perf_obs.prom");
  tracer.write(out + "/bench_perf_obs_trace.json");
  return 0;
}
