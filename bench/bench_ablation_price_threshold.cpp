// Ablation: the $5/MWh price threshold (paper §6.1). tau = 0 chases
// every differential (maximum churn); large tau ignores real savings.
// Reports savings and a route-churn metric per threshold. All tau
// points share one engine in the batched sweep (only the router config
// changes).

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: price threshold",
                "Savings and routing churn vs the optimizer's price "
                "threshold (24-day trace, (0%,1.1), 1500 km, relax 95/5)");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> taus = {0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };
  specs.push_back(base);
  for (const double tau : taus) {
    core::ScenarioSpec s = base;
    s.router = "price-aware";
    s.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0},
                                      .price_threshold = UsdPerMwh{tau}};
    specs.push_back(s);
  }
  core::SweepStats stats;
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs, &stats);

  io::Table table({"tau ($/MWh)", "savings (%)", "mean distance (km)"});
  io::CsvWriter csv(bench::csv_path("ablation_price_threshold"));
  csv.row({"tau", "savings_pct", "mean_distance_km"});

  for (std::size_t i = 0; i < taus.size(); ++i) {
    const core::SavingsReport r = core::compare(runs[0], runs[1 + i]);
    char t_s[16], s_s[16], d_s[16];
    std::snprintf(t_s, sizeof(t_s), "%.0f", taus[i]);
    std::snprintf(s_s, sizeof(s_s), "%.2f", r.savings_percent);
    std::snprintf(d_s, sizeof(d_s), "%.0f", r.optimized_mean_km);
    table.add_row({t_s, s_s, d_s});
    csv.row({io::format_number(taus[i], 1), io::format_number(r.savings_percent, 3),
             io::format_number(r.optimized_mean_km, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("sweep: %zu runs over %zu engine(s)\n", stats.runs,
              stats.engines_built);
  std::printf(
      "Shape: savings are flat for small tau (the $5 threshold sacrifices\n"
      "almost nothing) and collapse once tau exceeds typical differentials -\n"
      "while mean distance falls back toward proximity routing.\n");
  std::printf("CSV: %s\n", bench::csv_path("ablation_price_threshold").c_str());
  return 0;
}
