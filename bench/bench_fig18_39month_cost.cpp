// Fig 18: 39-month electricity cost vs distance threshold with the
// synthetic hour-of-week workload, normalized to the Akamai-like
// allocation. Includes the static "move all servers to the cheapest hub"
// comparison of §6.3 ("Dynamic Beats Static"). The whole grid goes
// through one batched run_scenarios call: engines are shared across the
// sweep (baseline/relaxed, constrained, consolidated-static).

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 18",
                "Normalized 39-month cost vs distance threshold, (0% idle, "
                "1.1 PUE), synthetic workload");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> thresholds = {0.0,    500.0,  1000.0,
                                          1500.0, 2000.0, 2500.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kSynthetic39Month,
  };
  specs.push_back(base);
  {
    core::ScenarioSpec st = base;
    st.router = "static-cheapest";
    specs.push_back(st);
  }
  for (const double km : thresholds) {
    for (const bool follow : {true, false}) {
      core::ScenarioSpec s = base;
      s.router = "price-aware";
      s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
      s.enforce_p95 = follow;
      specs.push_back(s);
    }
  }

  core::SweepStats stats;
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs, &stats);
  const double base_cost = runs[0].total_cost.value();
  const double static_cost = runs[1].total_cost.value();

  io::Table table({"threshold (km)", "follow 95/5", "relax 95/5"});
  io::CsvWriter csv(bench::csv_path("fig18_39month_cost"));
  csv.row({"threshold_km", "normalized_cost_follow", "normalized_cost_relax",
           "normalized_cost_static_cheapest"});

  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double km = thresholds[i];
    const double follow = runs[2 + 2 * i].total_cost.value() / base_cost;
    const double relax = runs[2 + 2 * i + 1].total_cost.value() / base_cost;
    char km_s[16], f_s[16], r_s[16];
    std::snprintf(km_s, sizeof(km_s), "%.0f", km);
    std::snprintf(f_s, sizeof(f_s), "%.3f", follow);
    std::snprintf(r_s, sizeof(r_s), "%.3f", relax);
    table.add_row({km_s, f_s, r_s});
    csv.row({io::format_number(km, 0), io::format_number(follow, 4),
             io::format_number(relax, 4),
             io::format_number(static_cost / base_cost, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Akamai-like routing = 1.000; only-use-cheapest-hub (static "
              "relocation) = %.3f.\n",
              static_cost / base_cost);
  std::printf("sweep: %zu runs over %zu engines, %zu workload build(s)\n",
              stats.runs, stats.engines_built, stats.workloads_built);
  std::printf(
      "Paper shape: 39-month savings exceed the 24-day ones; with relaxed\n"
      "constraints the dynamic solution (paper ~0.55) beats the static\n"
      "cheapest-market relocation (paper ~0.65) by a substantial margin.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig18_39month_cost").c_str());
  return 0;
}
