// Fig 10: price differential distributions for five location pairs over
// the 39 months of hourly prices (paper mu/sigma/kappa in brackets).

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 10",
                "Price differential histograms for five pairs, 39 months");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();

  io::CsvWriter csv(bench::csv_path("fig10_differential_hist"));
  csv.row({"pair", "bin_center", "fraction"});
  io::Table table({"pair", "mean", "[paper]", "sigma", "[paper]", "kurt", "[paper]"});

  for (const auto& t : market::fig10_targets()) {
    const auto d = market::differential(prices, hubs, t.hub_a, t.hub_b);
    const auto s = stats::summarize(d);
    char m[16], mp[16], sd[16], sdp[16], k[16], kp[16];
    std::snprintf(m, sizeof(m), "%.1f", s.mean);
    std::snprintf(mp, sizeof(mp), "[%.1f]", t.mean);
    std::snprintf(sd, sizeof(sd), "%.1f", s.stddev);
    std::snprintf(sdp, sizeof(sdp), "[%.1f]", t.stddev);
    std::snprintf(k, sizeof(k), "%.0f", s.kurtosis);
    std::snprintf(kp, sizeof(kp), "[%.0f]", t.kurtosis);
    table.add_row({std::string(t.label), m, mp, sd, sdp, k, kp});

    stats::Histogram hist(-100.0, 100.0, 5.0);
    hist.add_all(d);
    for (const auto& row : hist.rows()) {
      csv.row({std::string(t.label), io::format_number(row.center, 1),
               io::format_number(row.fraction, 5)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // The paper's §3.3 footnote: many pairs are dynamically exploitable.
  const auto hourly = hubs.hourly_hubs();
  int balanced_50 = 0;
  int balanced_25 = 0;
  for (std::size_t i = 0; i < hourly.size(); ++i) {
    for (std::size_t j = i + 1; j < hourly.size(); ++j) {
      const auto d = market::differential(prices, hubs, hubs.info(hourly[i]).code,
                                          hubs.info(hourly[j]).code);
      const auto s = stats::summarize(d);
      if (std::abs(s.mean) <= 5.0 && s.stddev >= 50.0) ++balanced_50;
      if (std::abs(s.mean) <= 5.0 && s.stddev >= 25.0) ++balanced_25;
    }
  }
  std::printf("pairs with |mu|<=5 and sigma>=50: %d [paper: 60]\n", balanced_50);
  std::printf("pairs with |mu|<=5 and sigma>=25: %d [paper: 86]\n", balanced_25);
  std::printf("CSV: %s\n", bench::csv_path("fig10_differential_hist").c_str());
  return 0;
}
