// Ablation (paper §8 "Implementing Joint Optimization"): hard distance
// threshold vs a soft distance penalty in the objective. Both trace a
// cost-vs-mean-distance frontier; an integrated traffic-engineering
// framework would use the soft form.

#include "bench_common.h"
#include "core/joint_router.h"

namespace {

using namespace cebis;

struct FrontierPoint {
  double knob = 0.0;
  double cost = 0.0;
  double mean_km = 0.0;
};

FrontierPoint run_joint(const core::Fixture& fx, double lambda) {
  core::EngineConfig cfg;
  cfg.energy = energy::optimistic_future_params();
  cfg.enforce_p95 = false;
  core::SimulationEngine engine(fx.clusters, fx.prices, fx.distances, cfg);
  core::JointObjectiveConfig jcfg;
  jcfg.lambda_usd_per_mwh_km = lambda;
  core::JointObjectiveRouter router(fx.distances, fx.clusters.size(), jcfg);
  core::TraceWorkload workload(fx.trace, fx.allocation);
  const core::RunResult r = engine.run(workload, router);
  return {lambda, r.total_cost.value(), r.mean_distance_km};
}

FrontierPoint run_threshold(const core::Fixture& fx, double km) {
  core::Scenario s;
  s.energy = energy::optimistic_future_params();
  s.workload = core::WorkloadKind::kTrace24Day;
  s.enforce_p95 = false;
  s.distance_threshold = Km{km};
  const core::RunResult r = core::run_price_aware(fx, s);
  return {km, r.total_cost.value(), r.mean_distance_km};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: joint objective vs hard threshold",
                "Cost vs mean client-server distance frontiers, 24-day "
                "trace, (0%,1.1), relax 95/5");

  const core::Fixture& fx = bench::fixture(seed);
  const double base_cost = [&fx] {
    core::Scenario s;
    s.energy = energy::optimistic_future_params();
    s.workload = core::WorkloadKind::kTrace24Day;
    return core::run_baseline(fx, s).total_cost.value();
  }();

  io::Table table({"scheme", "knob", "normalized cost", "mean dist (km)"});
  io::CsvWriter csv(bench::csv_path("ablation_joint_objective"));
  csv.row({"scheme", "knob", "normalized_cost", "mean_distance_km"});

  for (double km : {0.0, 500.0, 1000.0, 1500.0, 2500.0}) {
    const FrontierPoint p = run_threshold(fx, km);
    char k[16], c[16], d[16];
    std::snprintf(k, sizeof(k), "theta=%.0f", p.knob);
    std::snprintf(c, sizeof(c), "%.3f", p.cost / base_cost);
    std::snprintf(d, sizeof(d), "%.0f", p.mean_km);
    table.add_row({"hard threshold", k, c, d});
    csv.row({"threshold", io::format_number(p.knob, 0),
             io::format_number(p.cost / base_cost, 4),
             io::format_number(p.mean_km, 1)});
  }
  for (double lambda : {0.2, 0.05, 0.02, 0.01, 0.005, 0.0}) {
    const FrontierPoint p = run_joint(fx, lambda);
    char k[20], c[16], d[16];
    std::snprintf(k, sizeof(k), "lambda=%.3f", p.knob);
    std::snprintf(c, sizeof(c), "%.3f", p.cost / base_cost);
    std::snprintf(d, sizeof(d), "%.0f", p.mean_km);
    table.add_row({"soft penalty", k, c, d});
    csv.row({"joint", io::format_number(p.knob, 4),
             io::format_number(p.cost / base_cost, 4),
             io::format_number(p.mean_km, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: both knobs sweep the same frontier ends (closest-cluster to\n"
      "pure price chasing). At matched mean distance the soft penalty tends\n"
      "to meet or beat the hard threshold: it spends distance only where a\n"
      "price differential pays for it, which is how an integrated\n"
      "traffic-engineering framework (paper §8) would consume price data.\n");
  std::printf("CSV: %s\n", bench::csv_path("ablation_joint_objective").c_str());
  return 0;
}
