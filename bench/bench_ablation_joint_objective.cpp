// Ablation (paper §8 "Implementing Joint Optimization"): hard distance
// threshold vs a soft distance penalty in the objective. Both trace a
// cost-vs-mean-distance frontier; an integrated traffic-engineering
// framework would use the soft form. Both schemes are registry routers,
// so the whole frontier is one batched sweep over one shared engine.

#include <vector>

#include "bench_common.h"
#include "core/joint_router.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: joint objective vs hard threshold",
                "Cost vs mean client-server distance frontiers, 24-day "
                "trace, (0%,1.1), relax 95/5");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> thresholds = {0.0, 500.0, 1000.0, 1500.0, 2500.0};
  const std::vector<double> lambdas = {0.2, 0.05, 0.02, 0.01, 0.005, 0.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };
  specs.push_back(base);
  for (const double km : thresholds) {
    core::ScenarioSpec s = base;
    s.router = "price-aware";
    s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
    specs.push_back(s);
  }
  for (const double lambda : lambdas) {
    core::ScenarioSpec s = base;
    s.router = "joint-objective";
    s.config = core::JointObjectiveConfig{.lambda_usd_per_mwh_km = lambda};
    specs.push_back(s);
  }
  core::SweepStats stats;
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs, &stats);
  const double base_cost = runs[0].total_cost.value();

  io::Table table({"scheme", "knob", "normalized cost", "mean dist (km)"});
  io::CsvWriter csv(bench::csv_path("ablation_joint_objective"));
  csv.row({"scheme", "knob", "normalized_cost", "mean_distance_km"});

  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const core::RunResult& r = runs[1 + i];
    char k[16], c[16], d[16];
    std::snprintf(k, sizeof(k), "theta=%.0f", thresholds[i]);
    std::snprintf(c, sizeof(c), "%.3f", r.total_cost.value() / base_cost);
    std::snprintf(d, sizeof(d), "%.0f", r.mean_distance_km);
    table.add_row({"hard threshold", k, c, d});
    csv.row({"threshold", io::format_number(thresholds[i], 0),
             io::format_number(r.total_cost.value() / base_cost, 4),
             io::format_number(r.mean_distance_km, 1)});
  }
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    const core::RunResult& r = runs[1 + thresholds.size() + i];
    char k[20], c[16], d[16];
    std::snprintf(k, sizeof(k), "lambda=%.3f", lambdas[i]);
    std::snprintf(c, sizeof(c), "%.3f", r.total_cost.value() / base_cost);
    std::snprintf(d, sizeof(d), "%.0f", r.mean_distance_km);
    table.add_row({"soft penalty", k, c, d});
    csv.row({"joint", io::format_number(lambdas[i], 4),
             io::format_number(r.total_cost.value() / base_cost, 4),
             io::format_number(r.mean_distance_km, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("sweep: %zu runs over %zu engine(s)\n", stats.runs,
              stats.engines_built);
  std::printf(
      "Reading: both knobs sweep the same frontier ends (closest-cluster to\n"
      "pure price chasing). At matched mean distance the soft penalty tends\n"
      "to meet or beat the hard threshold: it spends distance only where a\n"
      "price differential pays for it, which is how an integrated\n"
      "traffic-engineering framework (paper §8) would consume price data.\n");
  std::printf("CSV: %s\n", bench::csv_path("ablation_joint_objective").c_str());
  return 0;
}
