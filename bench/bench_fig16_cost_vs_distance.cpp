// Fig 16: 24-day electricity cost vs distance threshold, (0% idle,
// PUE 1.1), normalized to the Akamai-like allocation's cost. One batched
// run_scenarios call; the relaxed runs share the baseline's engine.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 16",
                "Normalized 24-day cost vs distance threshold, (0% idle, "
                "1.1 PUE)");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> thresholds = {0.0,    250.0,  500.0,  750.0,
                                          1000.0, 1100.0, 1250.0, 1500.0,
                                          1750.0, 2000.0, 2250.0, 2500.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
  };
  specs.push_back(base);
  for (const double km : thresholds) {
    for (const bool follow : {true, false}) {
      core::ScenarioSpec s = base;
      s.router = "price-aware";
      s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
      s.enforce_p95 = follow;
      specs.push_back(s);
    }
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs);
  const double base_cost = runs[0].total_cost.value();

  io::Table table({"threshold (km)", "follow 95/5", "relax 95/5"});
  io::CsvWriter csv(bench::csv_path("fig16_cost_vs_distance"));
  csv.row({"threshold_km", "normalized_cost_follow", "normalized_cost_relax"});

  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double km = thresholds[i];
    const double follow = runs[1 + 2 * i].total_cost.value() / base_cost;
    const double relax = runs[1 + 2 * i + 1].total_cost.value() / base_cost;

    char km_s[16], f_s[16], r_s[16];
    std::snprintf(km_s, sizeof(km_s), "%.0f", km);
    std::snprintf(f_s, sizeof(f_s), "%.3f", follow);
    std::snprintf(r_s, sizeof(r_s), "%.3f", relax);
    table.add_row({km_s, f_s, r_s});
    csv.row({io::format_number(km, 0), io::format_number(follow, 4),
             io::format_number(relax, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Akamai allocation = 1.000 by construction.\n");
  std::printf("Paper shape: cost falls with the threshold; an elbow near\n"
              "1500 km (Boston-Chicago distance); relaxed constraints sit\n"
              "well below the constrained curve.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig16_cost_vs_distance").c_str());
  return 0;
}
