// Extension (§7 "Selling Flexibility"): triggered demand-response
// participation and EnerNOC-style aggregation of small sites.

#include "bench_common.h"
#include "demand_response/aggregator.h"
#include "demand_response/dr_policy.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: demand response (paper §7)",
                "Triggered load reductions during grid-stress events, "
                "24-day window, google-like elasticity");

  const core::Fixture& fx = bench::fixture(seed);
  const core::ScenarioSpec s{
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  std::vector<HubId> hubs;
  for (const auto& c : fx.clusters) hubs.push_back(c.hub);
  const auto events =
      demand_response::generate_events(fx.prices(), hubs, trace_period());

  std::printf("events called by the RTOs over the window: %zu\n", events.size());
  for (const auto& e : events) {
    std::printf("  %s at %-4s for %dh (RT price $%.0f/MWh)\n",
                hour_label(e.start).c_str(),
                std::string(fx.clusters[e.cluster].label).c_str(),
                e.duration_hours,
                fx.prices().rt_at(fx.clusters[e.cluster].hub, e.start).value());
  }

  const demand_response::DrSettlement settle =
      demand_response::simulate_participation(fx, s, events);

  io::Table table({"quantity", "value"});
  auto money = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "$%.0f", v);
    return std::string(buf);
  };
  table.add_row({"enrolled average power", io::format_number(settle.enrolled_mw, 2) + " MW"});
  table.add_row({"reduction delivered", io::format_number(settle.delivered_mwh, 1) + " MWh"});
  table.add_row({"shortfall", io::format_number(settle.shortfall_mwh, 1) + " MWh"});
  table.add_row({"energy payments", money(settle.energy_payments.value())});
  table.add_row({"availability payments", money(settle.availability_payments.value())});
  table.add_row({"penalties", money(settle.penalties.value())});
  table.add_row({"reroute cost delta", money(settle.reroute_cost_delta.value())});
  table.add_row({"net revenue", money(settle.net_revenue.value())});
  std::printf("\n%s\n", table.render().c_str());
  std::printf("Paper's point: a multi-market distributed system can shed load\n"
              "at one location by rerouting - and shedding during price spikes\n"
              "often lowers the electric bill at the same time.\n\n");

  // Aggregation: small deployments packaged into sellable blocks.
  demand_response::Aggregator agg(demand_response::AggregationTerms{});
  for (const auto& c : fx.clusters) {
    const auto& hub = market::HubRegistry::instance().info(c.hub);
    // Enroll each cluster's flexible load at ~10 kW per 40 servers
    // (a few racks - the paper's minimum participation scale).
    agg.enroll(demand_response::Site{"cdn", hub.rto,
                                     std::max(10.0, c.servers / 40.0 * 10.0)});
  }
  for (int i = 0; i < 8; ++i) {
    agg.enroll(demand_response::Site{"hotel", market::Rto::kPjm, 12.0});
  }
  const auto report = agg.package();
  std::printf("aggregated blocks (min sellable block %.0f kW):\n", 100.0);
  for (const auto& b : report.blocks) {
    std::printf("  %-6s %7.0f kW across %zu sites  %s\n",
                std::string(market::to_string(b.rto)).c_str(), b.total_kw,
                b.members.size(), b.sellable ? "SELLABLE" : "below minimum");
  }
  std::printf("sellable flexibility: %.2f MW -> availability revenue "
              "$%.0f/month (aggregator keeps $%.0f)\n",
              report.sellable_mw, report.monthly_availability_revenue.value(),
              report.aggregator_cut.value());

  io::CsvWriter csv(bench::csv_path("ext_demand_response"));
  csv.row({"metric", "value"});
  csv.row({"events", std::to_string(events.size())});
  csv.row({"delivered_mwh", io::format_number(settle.delivered_mwh, 2)});
  csv.row({"net_revenue_usd", io::format_number(settle.net_revenue.value(), 2)});
  csv.row({"sellable_mw", io::format_number(report.sellable_mw, 3)});
  std::printf("CSV: %s\n", bench::csv_path("ext_demand_response").c_str());
  return 0;
}
