#!/usr/bin/env python3
"""CI gate for the perf/figure baselines pinned in BENCH_perf.json.

Three checks, one hard and two soft:

* Figure gate (hard): the rows each gated figure bench
  (bench_ext_battery_arbitrage, bench_ext_five_minute_market,
  bench_ext_delay_steps) wrote to
  its CSV must match the pinned rows exactly at the printed precision
  (same key cell, same dollars to the cent), every pinned row must be
  PRESENT in the CSV (a silently dropped row is as much a behaviour
  change as a drifted one), and the gate prints exactly which rows were
  compared. Real behaviour drift in the market, storage or routing
  layers shows up at dollars scale -> exit 1. Half a
  least-printed-digit of slack (abs_tol 0.005) absorbs cross-toolchain
  libm ulp differences between the host that pinned the baselines and
  the CI runner - the repo's only cross-host float comparison.

* Timing gate (soft): every google-benchmark entry of bench_perf_router
  / bench_perf_market / bench_perf_service is compared against its
  pinned real_time. A
  regression beyond --threshold (default 1.25x) emits a GitHub
  ::warning:: annotation but never fails the job - CI runners are far
  too noisy for hard timing gates; the annotation is the paper trail.

* Deterministic-counter gate (soft): pinned entries may list counters
  under "deterministic_counters" (e.g. BM_FiveMinutePlanReplay pins
  plan_rebuilds_per_step; BM_ObsOverhead pins plan_rebuilds_per_run and
  materialized_hours). Unlike wall time such counters are exact
  properties of the code path, so a measured value above the pinned one
  means the underlying machinery regressed - the hour-scoped plans
  rebuild more often than the price cadence requires, a sweep stopped
  sharing engines, etc. -> ::warning::.

* Observability-overhead gate (soft): bench_perf_obs' BM_ObsOverhead
  reports the enabled/disabled wall-clock ratio of the metered 24-day
  simulation as `overhead_ratio`. A ratio above --obs-overhead (default
  1.02, the obs layer's < 2% contract) emits ::warning:: - timing-based
  like the regression gate, so soft, but with its own much tighter
  threshold because the two legs run interleaved in the same process
  and share any machine-level noise.

Usage:
  python3 bench/check_bench_results.py \
      --baseline BENCH_perf.json --results perf-results/
"""

from __future__ import annotations

import argparse
import csv
import json
import math
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Gated figure benches: CSV file, the columns that identify a row
# (cell), and the columns compared against the pinned values. Columns
# the pinned rows do not carry (energy_usd, wall_ms, ...) are ignored.
FIGURE_GATES = {
    "bench_ext_battery_arbitrage": {
        "csv": "cebis_ext_battery_arbitrage.csv",
        "keys": ("policy", "hours_of_storage"),
        "values": ("total_usd", "saved_usd", "saved_pct", "discharged_mwh"),
    },
    "bench_ext_five_minute_market": {
        "csv": "cebis_ext_five_minute_market.csv",
        "keys": ("market_interval_min",),
        "values": ("baseline_usd", "optimized_usd", "saved_pct",
                   "storage_net_usd", "net_demand_usd"),
    },
    "bench_ext_delay_steps": {
        "csv": "cebis_ext_delay_steps.csv",
        "keys": ("reaction_delay_min",),
        "values": ("baseline_usd", "optimized_usd", "saved_pct"),
    },
}

errors = 0
warnings = 0


def error(msg: str) -> None:
    global errors
    errors += 1
    print(f"::error::{msg}")


def warn(msg: str) -> None:
    global warnings
    warnings += 1
    print(f"::warning::{msg}")


def to_ns(value: float, unit: str) -> float:
    return value * TIME_UNIT_NS[unit]


def figure_cell(spec: dict, row: dict) -> tuple:
    """Row identity: the gate's key columns, floats normalized."""

    def norm(v):
        try:
            return round(float(v), 6)
        except (TypeError, ValueError):
            return str(v)

    return tuple(norm(row[k]) for k in spec["keys"])


def check_figure_rows(baseline: dict, results: pathlib.Path) -> None:
    for harness, spec in FIGURE_GATES.items():
        pinned = baseline.get(harness, {}).get("rows", [])
        if not pinned:
            # An empty pinned set must never pass vacuously: the gate
            # exists to hard-fail on behaviour drift.
            error(
                f"figure gate: baseline carries no {harness} rows "
                "(BENCH_perf.json truncated or mis-regenerated?)"
            )
            continue
        csv_path = results / spec["csv"]
        if not csv_path.exists():
            error(f"figure gate: {csv_path} missing (did the bench run?)")
            continue
        with csv_path.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        by_cell = {figure_cell(spec, r): r for r in rows}

        # Every pinned row must be present: a cell silently dropped from
        # the CSV is a behaviour change the value diff below would never
        # see, so it hard-fails on its own.
        missing = [figure_cell(spec, w) for w in pinned
                   if figure_cell(spec, w) not in by_cell]
        for cell in missing:
            error(
                f"figure gate: pinned row {cell} missing from {csv_path.name} "
                "(bench dropped a cell - behaviour change or truncated run)"
            )

        compared = 0
        for want in pinned:
            cell = figure_cell(spec, want)
            got = by_cell.get(cell)
            if got is None:
                continue  # already reported above
            compared += 1
            mismatched = []
            for field in spec["values"]:
                if field not in got:
                    error(f"figure gate: column '{field}' missing from "
                          f"{csv_path.name}")
                    continue
                # Exact at the printed precision: the CSV rounds to >= 2
                # decimals, so 0.005 is half its least digit - enough for
                # a 1-ulp libm skew across toolchains, far below real
                # drift.
                if not math.isclose(float(got[field]), float(want[field]),
                                    rel_tol=0.0, abs_tol=0.005):
                    mismatched.append(field)
                    error(
                        f"figure gate: {harness} row {cell} "
                        f"{field} = {got[field]}, pinned {want[field]} "
                        f"(behaviour drifted - regenerate BENCH_perf.json "
                        f"only if the change is intended)"
                    )
            status = "MISMATCH: " + ",".join(mismatched) if mismatched else "ok"
            print(f"figure gate: {harness} compared row {cell} [{status}]")
        for cell in sorted(set(by_cell) -
                           {figure_cell(spec, w) for w in pinned}):
            print(f"figure gate: {harness} CSV row {cell} has no pinned "
                  "baseline (new cell?)")
        print(f"figure gate: {harness} compared {compared}/{len(pinned)} "
              f"pinned rows against {csv_path.name}"
              + (f", {len(missing)} missing" if missing else ""))


def check_timings(baseline: dict, results: pathlib.Path, threshold: float) -> None:
    for harness in ("bench_perf_router", "bench_perf_market",
                    "bench_perf_service", "bench_perf_obs",
                    "bench_perf_net"):
        json_path = results / f"{harness}.json"
        if not json_path.exists():
            error(f"timing gate: {json_path} missing (did the bench run?)")
            continue
        with json_path.open() as fh:
            measured = {
                b["name"]: b
                for b in json.load(fh).get("benchmarks", [])
                if b.get("run_type", "iteration") == "iteration"
            }
        pinned = {b["name"]: b for b in baseline.get(harness, [])}
        for name, want in pinned.items():
            got = measured.get(name)
            if got is None:
                warn(f"timing gate: {harness}:{name} pinned but not measured")
                continue
            base_ns = to_ns(want["real_time"], want["time_unit"])
            got_ns = to_ns(got["real_time"], got["time_unit"])
            ratio = got_ns / base_ns if base_ns > 0 else float("inf")
            status = "ok"
            if ratio > threshold:
                warn(
                    f"perf regression: {harness}:{name} {got_ns / 1e6:.3f} ms "
                    f"vs baseline {base_ns / 1e6:.3f} ms ({ratio:.2f}x, "
                    f"soft threshold {threshold:.2f}x)"
                )
                status = "REGRESSED"
            print(f"timing gate: {harness}:{name} {ratio:.2f}x baseline [{status}]")

            # Deterministic-counter gate: a pinned entry opts in by
            # listing counters under "deterministic_counters". Unlike
            # wall time those are exact properties of the code path
            # (e.g. plan_rebuilds_per_step: how often hour-scoped plans
            # rebuild vs the price cadence), so any measured value above
            # the pinned one means the machinery regressed even if the
            # wall clock hides it. 1% + epsilon slack only absorbs
            # iteration-count rounding of per-step ratios (and keeps a
            # pinned 0.0 an exact gate).
            for counter in want.get("deterministic_counters", ()):
                if counter not in want:
                    warn(f"counter gate: {harness}:{name} lists '{counter}' "
                         "as deterministic but pins no value for it")
                    continue
                pinned_rate = float(want[counter])
                got_rate = float(got.get(counter, "nan"))
                if not got_rate <= pinned_rate * 1.01 + 1e-12:
                    warn(
                        f"counter regression: {harness}:{name} "
                        f"{counter} = {got_rate:.6g} vs pinned "
                        f"{pinned_rate:.6g} - this counter is deterministic, "
                        f"so the underlying machinery regressed"
                    )
        for name in sorted(set(measured) - set(pinned)):
            print(f"timing gate: {harness}:{name} has no pinned baseline (new bench?)")


def check_obs_overhead(results: pathlib.Path, threshold: float) -> None:
    """The obs layer's < 2% contract: metered vs unmetered 24-day run."""
    json_path = results / "bench_perf_obs.json"
    if not json_path.exists():
        return  # already reported by the timing gate
    with json_path.open() as fh:
        measured = {b["name"]: b for b in json.load(fh).get("benchmarks", [])}
    got = measured.get("BM_ObsOverhead")
    if got is None or "overhead_ratio" not in got:
        error("obs gate: BM_ObsOverhead missing from bench_perf_obs.json "
              "(the overhead contract went unmeasured)")
        return
    ratio = float(got["overhead_ratio"])
    if ratio > threshold:
        warn(
            f"obs overhead: metrics-enabled 24-day run is {ratio:.4f}x the "
            f"disabled run (soft contract {threshold:.2f}x) - a hot-path "
            f"handle got more expensive or a new tap landed on the step path"
        )
        status = "REGRESSED"
    else:
        status = "ok"
    print(f"obs gate: BM_ObsOverhead overhead_ratio = {ratio:.4f} "
          f"(threshold {threshold:.2f}) [{status}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, default="BENCH_perf.json")
    parser.add_argument("--results", type=pathlib.Path, default="perf-results")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="soft-warn when real_time exceeds baseline by this factor",
    )
    parser.add_argument(
        "--obs-overhead",
        type=float,
        default=1.02,
        help="soft-warn when BM_ObsOverhead's overhead_ratio exceeds this",
    )
    args = parser.parse_args()

    with args.baseline.open() as fh:
        baseline = json.load(fh)

    check_figure_rows(baseline, args.results)
    check_timings(baseline, args.results, args.threshold)
    check_obs_overhead(args.results, args.obs_overhead)

    if errors:
        print(f"FAILED: {errors} error(s), {warnings} timing warning(s)")
        return 1
    print(f"OK: figure rows exact, {warnings} timing warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
