#!/usr/bin/env python3
"""CI gate for the perf/figure baselines pinned in BENCH_perf.json.

Two checks, one hard and one soft:

* Figure gate (hard): the rows bench_ext_battery_arbitrage wrote to its
  CSV must match the pinned rows exactly at the printed precision (same
  policy/size cell, same dollars to the cent). Real behaviour drift in
  the storage subsystem or the routing underneath it shows up at
  dollars scale -> exit 1. Half a least-printed-digit of slack
  (abs_tol 0.005) absorbs cross-toolchain libm ulp differences between
  the host that pinned the baselines and the CI runner - the repo's
  only cross-host float comparison.

* Timing gate (soft): every google-benchmark entry of bench_perf_router
  / bench_perf_market is compared against its pinned real_time. A
  regression beyond --threshold (default 1.25x) emits a GitHub
  ::warning:: annotation but never fails the job - CI runners are far
  too noisy for hard timing gates; the annotation is the paper trail.

Usage:
  python3 bench/check_bench_results.py \
      --baseline BENCH_perf.json --results perf-results/
"""

from __future__ import annotations

import argparse
import csv
import json
import math
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# CSV column -> pinned-row key for the figure gate. Columns the pinned
# rows do not carry (energy_usd, demand_usd, wall_ms) are ignored.
FIGURE_KEYS = ("policy", "hours_of_storage")
FIGURE_VALUES = ("total_usd", "saved_usd", "saved_pct", "discharged_mwh")

errors = 0
warnings = 0


def error(msg: str) -> None:
    global errors
    errors += 1
    print(f"::error::{msg}")


def warn(msg: str) -> None:
    global warnings
    warnings += 1
    print(f"::warning::{msg}")


def to_ns(value: float, unit: str) -> float:
    return value * TIME_UNIT_NS[unit]


def check_figure_rows(baseline: dict, results: pathlib.Path) -> None:
    pinned = baseline.get("bench_ext_battery_arbitrage", {}).get("rows", [])
    if not pinned:
        # An empty pinned set must never pass vacuously: the gate exists
        # to hard-fail on behaviour drift.
        error(
            "figure gate: baseline carries no bench_ext_battery_arbitrage rows "
            "(BENCH_perf.json truncated or mis-regenerated?)"
        )
        return
    csv_path = results / "cebis_ext_battery_arbitrage.csv"
    if not csv_path.exists():
        error(f"figure gate: {csv_path} missing (did the bench run?)")
        return
    with csv_path.open(newline="") as fh:
        rows = list(csv.DictReader(fh))

    def cell_key(policy: str, hours: float) -> tuple:
        return (policy, round(float(hours), 6))

    by_cell = {cell_key(r["policy"], r["hours_of_storage"]): r for r in rows}
    for want in pinned:
        key = cell_key(want["policy"], want["hours_of_storage"])
        got = by_cell.get(key)
        if got is None:
            error(f"figure gate: row {key} missing from {csv_path.name}")
            continue
        for field in FIGURE_VALUES:
            if field not in got:
                error(f"figure gate: column '{field}' missing from {csv_path.name}")
                continue
            # Exact at the printed precision: the CSV rounds to >= 2
            # decimals, so 0.005 is half its least digit - enough for a
            # 1-ulp libm skew across toolchains, far below real drift.
            if not math.isclose(float(got[field]), float(want[field]),
                                rel_tol=0.0, abs_tol=0.005):
                error(
                    f"figure gate: {want['policy']}/{want['hours_of_storage']}h "
                    f"{field} = {got[field]}, pinned {want[field]} "
                    f"(storage/routing behaviour drifted - regenerate "
                    f"BENCH_perf.json only if the change is intended)"
                )
    pinned_cells = {cell_key(w["policy"], w["hours_of_storage"]) for w in pinned}
    for cell in sorted(set(by_cell) - pinned_cells):
        print(f"figure gate: CSV row {cell} has no pinned baseline (new cell?)")
    if not errors:
        print(f"figure gate: {len(pinned)} pinned rows match {csv_path.name} exactly")


def check_timings(baseline: dict, results: pathlib.Path, threshold: float) -> None:
    for harness in ("bench_perf_router", "bench_perf_market"):
        json_path = results / f"{harness}.json"
        if not json_path.exists():
            error(f"timing gate: {json_path} missing (did the bench run?)")
            continue
        with json_path.open() as fh:
            measured = {
                b["name"]: b
                for b in json.load(fh).get("benchmarks", [])
                if b.get("run_type", "iteration") == "iteration"
            }
        pinned = {b["name"]: b for b in baseline.get(harness, [])}
        for name, want in pinned.items():
            got = measured.get(name)
            if got is None:
                warn(f"timing gate: {harness}:{name} pinned but not measured")
                continue
            base_ns = to_ns(want["real_time"], want["time_unit"])
            got_ns = to_ns(got["real_time"], got["time_unit"])
            ratio = got_ns / base_ns if base_ns > 0 else float("inf")
            status = "ok"
            if ratio > threshold:
                warn(
                    f"perf regression: {harness}:{name} {got_ns / 1e6:.3f} ms "
                    f"vs baseline {base_ns / 1e6:.3f} ms ({ratio:.2f}x, "
                    f"soft threshold {threshold:.2f}x)"
                )
                status = "REGRESSED"
            print(f"timing gate: {harness}:{name} {ratio:.2f}x baseline [{status}]")
        for name in sorted(set(measured) - set(pinned)):
            print(f"timing gate: {harness}:{name} has no pinned baseline (new bench?)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, default="BENCH_perf.json")
    parser.add_argument("--results", type=pathlib.Path, default="perf-results")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="soft-warn when real_time exceeds baseline by this factor",
    )
    args = parser.parse_args()

    with args.baseline.open() as fh:
        baseline = json.load(fh)

    check_figure_rows(baseline, args.results)
    check_timings(baseline, args.results, args.threshold)

    if errors:
        print(f"FAILED: {errors} error(s), {warnings} timing warning(s)")
        return 1
    print(f"OK: figure rows exact, {warnings} timing warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
