#ifndef CEBIS_BENCH_BENCH_COMMON_H
#define CEBIS_BENCH_BENCH_COMMON_H

// Shared scaffolding for the figure-reproduction benches. Every bench
// prints the same rows/series the paper reports and writes a CSV copy
// (cebis_<figure>.csv in the working directory) for replotting.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "io/csv.h"
#include "io/table.h"

namespace cebis::bench {

/// Default seed 2009; override with argv[1]. Rejects non-numeric or
/// out-of-range input (strtoull would silently map garbage to 0) and
/// always reports the seed actually used.
inline std::uint64_t seed_from_args(int argc, char** argv) {
  std::uint64_t seed = 2009;
  if (argc > 1) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid seed '%s': expected a base-10 unsigned integer\n",
                   argv[1]);
      std::exit(2);
    }
    seed = parsed;
  }
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  return seed;
}

/// The shared experiment fixture (prices + trace + clusters), built once
/// per process.
inline const core::Fixture& fixture(std::uint64_t seed) {
  static const core::Fixture fx = core::Fixture::make(seed);
  return fx;
}

inline void header(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

inline std::string csv_path(const char* name) {
  return std::string("cebis_") + name + ".csv";
}

}  // namespace cebis::bench

#endif  // CEBIS_BENCH_BENCH_COMMON_H
