#ifndef CEBIS_BENCH_BENCH_COMMON_H
#define CEBIS_BENCH_BENCH_COMMON_H

// Shared scaffolding for the figure-reproduction benches. Every bench
// prints the same rows/series the paper reports and writes a CSV copy
// (cebis_<figure>.csv in the working directory) for replotting.

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "io/csv.h"
#include "io/table.h"

namespace cebis::bench {

/// Default seed 2009; override with argv[1]. Rejects non-numeric or
/// out-of-range input (strtoull would silently map garbage to 0) and
/// always reports the seed actually used.
inline std::uint64_t seed_from_args(int argc, char** argv) {
  std::uint64_t seed = 2009;
  if (argc > 1) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid seed '%s': expected a base-10 unsigned integer\n",
                   argv[1]);
      std::exit(2);
    }
    seed = parsed;
  }
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  return seed;
}

/// The shared experiment fixture (prices + trace + clusters), built once
/// per process.
inline const core::Fixture& fixture(std::uint64_t seed) {
  static const core::Fixture fx = core::Fixture::make(seed);
  return fx;
}

inline void header(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

inline std::string csv_path(const char* name) {
  return std::string("cebis_") + name + ".csv";
}

/// CsvWriter wrapper that stamps every data row with the wall-clock
/// milliseconds spent since the previous row (the header row gets a
/// trailing "wall_ms" column). CI archives the CSVs without their
/// google-benchmark JSON twins, so each artifact carries its own
/// timing; row-diff tooling (bench/check_bench_results.py) matches
/// columns by header name and ignores the timing column.
class TimedCsv {
 public:
  explicit TimedCsv(const std::string& path)
      : csv_(path), last_(Clock::now()) {}

  /// The column-name row; appends "wall_ms".
  void header(std::vector<std::string> cells) {
    cells.emplace_back("wall_ms");
    csv_.row(cells);
    last_ = Clock::now();
  }

  /// A data row; appends the milliseconds elapsed since the previous row.
  void row(std::vector<std::string> cells) {
    const Clock::time_point now = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - last_).count();
    last_ = now;
    cells.push_back(io::format_number(ms, 3));
    csv_.row(cells);
  }

  [[nodiscard]] const std::string& path() const noexcept { return csv_.path(); }

 private:
  using Clock = std::chrono::steady_clock;
  io::CsvWriter csv_;
  Clock::time_point last_;
};

}  // namespace cebis::bench

#endif  // CEBIS_BENCH_BENCH_COMMON_H
