#ifndef CEBIS_BENCH_BENCH_COMMON_H
#define CEBIS_BENCH_BENCH_COMMON_H

// Shared scaffolding for the figure-reproduction benches. Every bench
// prints the same rows/series the paper reports and writes a CSV copy
// (cebis_<figure>.csv in the working directory) for replotting.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "io/csv.h"
#include "io/table.h"

namespace cebis::bench {

/// Default seed; override with argv[1].
inline std::uint64_t seed_from_args(int argc, char** argv) {
  return argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;
}

/// The shared experiment fixture (prices + trace + clusters), built once
/// per process.
inline const core::Fixture& fixture(std::uint64_t seed) {
  static const core::Fixture fx = core::Fixture::make(seed);
  return fx;
}

inline void header(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

inline std::string csv_path(const char* name) {
  return std::string("cebis_") + name + ".csv";
}

}  // namespace cebis::bench

#endif  // CEBIS_BENCH_BENCH_COMMON_H
