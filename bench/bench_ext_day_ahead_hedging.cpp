// Extension (§7 "Existing Contracts"): how billing structure changes the
// value of price-aware routing. Compares pure real-time exposure,
// day-ahead hedging of predicted load (deviations settled at RT), a flat
// contract, and negawatt bidding.

#include "bench_common.h"
#include "core/observers.h"
#include "demand_response/negawatt_market.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: day-ahead hedging (paper §7)",
                "Billing structures over the 24-day window, google-like "
                "elasticity, price-aware routing at 1500 km");

  const core::Fixture& fx = bench::fixture(seed);
  core::ScenarioSpec s{
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  // One routed run with per-hour energies (recorder observer).
  core::HourlyEnergyRecorder recorder;
  core::ScenarioSpec routed = s;
  routed.router = "price-aware";
  routed.observers.push_back(&recorder);
  const core::RunResult run = core::run_scenario(fx, routed);

  const Period window = core::scenario_period(fx, s);
  const std::size_t n_hours = run.hourly_energy.hours();
  // Predicted per-hour energy: hour-of-week average of the realized
  // series (the operator's demand prior).
  std::vector<std::vector<double>> pred(
      n_hours, std::vector<double>(fx.clusters.size(), 0.0));
  {
    std::vector<std::vector<double>> cell_sum(
        7 * 24, std::vector<double>(fx.clusters.size(), 0.0));
    std::vector<int> cell_n(7 * 24, 0);
    for (std::size_t h = 0; h < n_hours; ++h) {
      const HourIndex hour = window.begin + static_cast<HourIndex>(h);
      const std::size_t cell =
          static_cast<std::size_t>(weekday(hour)) * 24 +
          static_cast<std::size_t>(hour_of_day(hour));
      ++cell_n[cell];
      for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
        cell_sum[cell][c] += run.hourly_energy.at(h, c);
      }
    }
    for (std::size_t h = 0; h < pred.size(); ++h) {
      const HourIndex hour = window.begin + static_cast<HourIndex>(h);
      const std::size_t cell =
          static_cast<std::size_t>(weekday(hour)) * 24 +
          static_cast<std::size_t>(hour_of_day(hour));
      for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
        pred[h][c] = cell_n[cell] > 0 ? cell_sum[cell][c] / cell_n[cell] : 0.0;
      }
    }
  }

  // Billing variants over the same physical consumption.
  double cost_rt = 0.0;
  double cost_hedged = 0.0;
  double cost_flat = 0.0;
  std::vector<double> daily_rt;
  std::vector<double> daily_hedged;
  double day_rt = 0.0;
  double day_hedged = 0.0;
  const double flat_rate = 62.0;  // a typical negotiated rate

  for (std::size_t h = 0; h < n_hours; ++h) {
    const HourIndex hour = window.begin + static_cast<HourIndex>(h);
    for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
      const double e = run.hourly_energy.at(h, c);
      const double rt = fx.prices().rt_at(fx.clusters[c].hub, hour).value();
      const double da = fx.prices().da_at(fx.clusters[c].hub, hour).value();
      cost_rt += e * rt;
      cost_hedged += pred[h][c] * da + (e - pred[h][c]) * rt;
      cost_flat += e * flat_rate;
      day_rt += e * rt;
      day_hedged += pred[h][c] * da + (e - pred[h][c]) * rt;
    }
    if (hour_of_day(hour) == 23) {
      daily_rt.push_back(day_rt);
      daily_hedged.push_back(day_hedged);
      day_rt = 0.0;
      day_hedged = 0.0;
    }
  }

  io::Table table({"billing structure", "24-day cost", "daily sigma"});
  auto money = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "$%.0f", v);
    return std::string(buf);
  };
  table.add_row({"real-time indexed", money(cost_rt),
                 money(stats::stddev(daily_rt))});
  table.add_row({"day-ahead hedged", money(cost_hedged),
                 money(stats::stddev(daily_hedged))});
  table.add_row({"flat $62/MWh", money(cost_flat), "$0"});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: hedging pays the DA premium (%.1f%% here) but cuts the daily\n"
      "cost volatility; a flat contract removes volatility entirely and -\n"
      "the paper's point - removes the incentive that price-aware routing\n"
      "exploits. Negawatt bids (below) monetize flexibility even then.\n\n",
      100.0 * (cost_hedged / cost_rt - 1.0));

  demand_response::NegawattStrategy strategy;
  const auto bids = demand_response::plan_bids(fx, s, strategy);
  const auto settle = demand_response::settle_bids(fx, s, bids);
  std::printf("negawatt bids: %d cleared, %.1f MWh offered, %.1f delivered, "
              "net revenue $%.0f\n",
              settle.bids, settle.offered_mwh, settle.delivered_mwh,
              settle.net_revenue.value());

  io::CsvWriter csv(bench::csv_path("ext_day_ahead_hedging"));
  csv.row({"structure", "cost_usd", "daily_sigma_usd"});
  csv.row({"real_time", io::format_number(cost_rt, 2),
           io::format_number(stats::stddev(daily_rt), 2)});
  csv.row({"day_ahead_hedged", io::format_number(cost_hedged, 2),
           io::format_number(stats::stddev(daily_hedged), 2)});
  csv.row({"flat_62", io::format_number(cost_flat, 2), "0"});
  std::printf("CSV: %s\n", bench::csv_path("ext_day_ahead_hedging").c_str());
  return 0;
}
