// Fig 14: traffic in the Akamai-like data set - global, US, and the
// 9-region subset, 5-minute samples over the 24-day window.

#include "bench_common.h"
#include "traffic/trace_generator.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 14",
                "Traffic in the synthetic trace: global / USA / 9-region "
                "subset, 24 days of 5-minute samples");

  const core::Fixture& fx = bench::fixture(seed);
  const traffic::TrafficTrace& trace = fx.trace;

  io::CsvWriter csv(bench::csv_path("fig14_traffic"));
  csv.row({"step", "utc", "global_hits", "usa_hits", "subset_hits"});

  double peak_global = 0.0;
  double peak_us = 0.0;
  double peak_subset = 0.0;
  for (std::int64_t step = 0; step < trace.steps(); ++step) {
    const double us = trace.us_total(step).value();
    const double global = trace.global_total(step).value();
    double subset = 0.0;
    const auto row = trace.state_row(step);
    for (std::size_t s = 0; s < row.size(); ++s) {
      subset +=
          row[s] * fx.allocation.subset_fraction(StateId{static_cast<std::int32_t>(s)});
    }
    peak_global = std::max(peak_global, global);
    peak_us = std::max(peak_us, us);
    peak_subset = std::max(peak_subset, subset);
    if (step % 6 == 0) {  // thin the CSV to 30-minute spacing
      csv.row({std::to_string(step), hour_label(trace.hour_of(step)),
               io::format_number(global, 0), io::format_number(us, 0),
               io::format_number(subset, 0)});
    }
  }

  // Console: daily mean curves.
  io::Table table({"day", "global (M hits/s)", "USA", "9-region"});
  const std::int64_t steps_per_day = 288;
  for (std::int64_t day = 0; day < trace.steps() / steps_per_day; ++day) {
    double g = 0.0, u = 0.0, s9 = 0.0;
    for (std::int64_t i = day * steps_per_day; i < (day + 1) * steps_per_day; ++i) {
      g += trace.global_total(i).value();
      u += trace.us_total(i).value();
      const auto row = trace.state_row(i);
      for (std::size_t s = 0; s < row.size(); ++s) {
        s9 += row[s] *
              fx.allocation.subset_fraction(StateId{static_cast<std::int32_t>(s)});
      }
    }
    const CivilDate d = date_of(trace.period().begin + day * 24);
    char label[16], gs[16], us_[16], ss[16];
    std::snprintf(label, sizeof(label), "%04d-%02d-%02d", d.year, d.month, d.day);
    std::snprintf(gs, sizeof(gs), "%.2f", g / steps_per_day / 1e6);
    std::snprintf(us_, sizeof(us_), "%.2f", u / steps_per_day / 1e6);
    std::snprintf(ss, sizeof(ss), "%.2f", s9 / steps_per_day / 1e6);
    table.add_row({label, gs, us_, ss});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("peaks: global %.2fM hits/s [paper: >2M], USA %.2fM [~1.25M], "
              "9-region %.2fM\n",
              peak_global / 1e6, peak_us / 1e6, peak_subset / 1e6);
  std::printf("Holiday dips near Dec 25 and Jan 1 are visible in the daily "
              "means above.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig14_traffic").c_str());
  return 0;
}
