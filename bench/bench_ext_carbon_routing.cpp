// Extension (§8 "Environmental Cost"): route by carbon intensity instead
// of (or blended with) dollars, tracing the cost-vs-carbon trade-off.

#include "bench_common.h"
#include "carbon/carbon_router.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: carbon-aware routing (paper §8)",
                "Blended objective alpha*price + (1-alpha)*carbon, 24-day "
                "window, fully elastic clusters, 2500 km threshold");

  const core::Fixture& fx = bench::fixture(seed);
  const carbon::CarbonIntensityModel intensity_model(seed);
  const market::PriceSet intensity = intensity_model.generate(study_period());

  const core::ScenarioSpec s{
      .config = core::PriceAwareConfig{.distance_threshold = Km{2500.0}},
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  const carbon::CarbonRunSummary baseline =
      carbon::run_baseline_carbon(fx, intensity, s);
  const auto curve = carbon::trade_off_curve(fx, intensity, s, 5);

  io::Table table({"alpha (price weight)", "cost vs baseline", "CO2 vs baseline",
                   "mean dist (km)"});
  io::CsvWriter csv(bench::csv_path("ext_carbon_routing"));
  csv.row({"alpha", "cost_usd", "carbon_kg", "cost_ratio", "carbon_ratio",
           "mean_distance_km"});
  csv.row({"baseline", io::format_number(baseline.cost_usd, 2),
           io::format_number(baseline.carbon_kg, 2), "1", "1",
           io::format_number(baseline.mean_distance_km, 1)});

  for (const auto& p : curve) {
    const double cost_ratio = p.optimizer.cost_usd / baseline.cost_usd;
    const double carbon_ratio = p.optimizer.carbon_kg / baseline.carbon_kg;
    char a_s[16], c_s[16], k_s[16], d_s[16];
    std::snprintf(a_s, sizeof(a_s), "%.2f", p.alpha);
    std::snprintf(c_s, sizeof(c_s), "%.3f", cost_ratio);
    std::snprintf(k_s, sizeof(k_s), "%.3f", carbon_ratio);
    std::snprintf(d_s, sizeof(d_s), "%.0f", p.optimizer.mean_distance_km);
    table.add_row({a_s, c_s, k_s, d_s});
    csv.row({io::format_number(p.alpha, 2),
             io::format_number(p.optimizer.cost_usd, 2),
             io::format_number(p.optimizer.carbon_kg, 2),
             io::format_number(cost_ratio, 4), io::format_number(carbon_ratio, 4),
             io::format_number(p.optimizer.mean_distance_km, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: alpha=1 is the paper's §6 optimizer (cheapest dollars);\n"
      "alpha=0 minimizes kg CO2 instead. The ends disagree - cheap power\n"
      "is often coal - so a socially-responsible operator faces a real\n"
      "trade-off, exactly as §8 anticipates.\n");
  std::printf("CSV: %s\n", bench::csv_path("ext_carbon_routing").c_str());
  return 0;
}
