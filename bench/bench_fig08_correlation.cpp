// Fig 8: price correlation vs distance for all 406 hub pairs, colored by
// parent RTO. The paper's findings: same-RTO pairs mostly above 0.6,
// cross-RTO pairs all below, correlation decaying with distance, and
// mutual information separating the groups more cleanly (footnote 8).

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 8",
                "Correlation coefficient vs hub distance, 406 pairs, "
                "2006-2009 hourly prices");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();
  const auto pairs = market::pairwise_correlations(prices, hubs, /*with_mi=*/true);

  io::CsvWriter csv(bench::csv_path("fig08_correlation"));
  csv.row({"hub_a", "hub_b", "distance_km", "correlation", "mutual_information",
           "same_rto", "rto_a", "rto_b"});
  for (const auto& p : pairs) {
    csv.row({std::string(p.hub_a), std::string(p.hub_b),
             io::format_number(p.distance_km, 1),
             io::format_number(p.correlation, 4),
             io::format_number(p.mutual_information, 4),
             p.same_rto ? "1" : "0", std::string(market::to_string(p.rto_a)),
             std::string(market::to_string(p.rto_b))});
  }

  // Console summary: distance-banded correlations and the RTO split.
  io::Table table({"distance band", "same-RTO mean r", "cross-RTO mean r", "pairs"});
  const double bands[] = {0.0, 250.0, 500.0, 1000.0, 2000.0, 5000.0};
  for (int b = 0; b < 5; ++b) {
    double same_sum = 0.0;
    int same_n = 0;
    double cross_sum = 0.0;
    int cross_n = 0;
    for (const auto& p : pairs) {
      if (p.distance_km < bands[b] || p.distance_km >= bands[b + 1]) continue;
      if (p.same_rto) {
        same_sum += p.correlation;
        ++same_n;
      } else {
        cross_sum += p.correlation;
        ++cross_n;
      }
    }
    char label[32], same_s[16], cross_s[16];
    std::snprintf(label, sizeof(label), "%.0f-%.0f km", bands[b], bands[b + 1]);
    std::snprintf(same_s, sizeof(same_s), same_n ? "%.2f" : "-",
                  same_n ? same_sum / same_n : 0.0);
    std::snprintf(cross_s, sizeof(cross_s), cross_n ? "%.2f" : "-",
                  cross_n ? cross_sum / cross_n : 0.0);
    table.add_row({label, same_s, cross_s, std::to_string(same_n + cross_n)});
  }
  std::printf("%s\n", table.render().c_str());

  int same_above = 0, same_total = 0, cross_above = 0, cross_total = 0;
  double mi_same = 0.0, mi_cross = 0.0;
  for (const auto& p : pairs) {
    if (p.same_rto) {
      ++same_total;
      if (p.correlation > 0.6) ++same_above;
      mi_same += p.mutual_information;
    } else {
      ++cross_total;
      if (p.correlation > 0.6) ++cross_above;
      mi_cross += p.mutual_information;
    }
  }
  std::printf("same-RTO pairs above r=0.6: %d/%d   cross-RTO above: %d/%d "
              "[paper: most vs none]\n",
              same_above, same_total, cross_above, cross_total);
  std::printf("mean mutual information: same-RTO %.3f vs cross-RTO %.3f nats "
              "[paper: MI separates the groups]\n",
              mi_same / same_total, mi_cross / cross_total);
  const auto np15 = hubs.by_code("NP15");
  const auto sp15 = hubs.by_code("SP15");
  for (const auto& p : pairs) {
    if ((p.hub_a == "NP15" && p.hub_b == "SP15") ||
        (p.hub_a == "SP15" && p.hub_b == "NP15")) {
      std::printf("LA-PaloAlto correlation: %.2f [paper: 0.94]\n", p.correlation);
    }
  }
  (void)np15;
  (void)sp15;
  std::printf("CSV: %s\n", bench::csv_path("fig08_correlation").c_str());
  return 0;
}
