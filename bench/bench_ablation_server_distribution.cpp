// Ablation: server distribution (paper §6.3: "We simulated other server
// distributions (evenly distributed across all 29 hubs, heterogeneous
// distributions, etc) and saw similar decreasing cost/distance curves").
// Compares the Akamai-like 9-cluster deployment against an even spread
// over all 29 hourly hubs and a coastal-heavy heterogeneous spread.

#include "bench_common.h"
#include "core/baseline_routers.h"
#include "core/simulation.h"

namespace {

using namespace cebis;

/// Builds a synthetic deployment: one cluster per hourly hub with the
/// given share of the fleet-wide capacity.
std::vector<core::Cluster> synthetic_deployment(
    const std::vector<double>& shares, double total_capacity) {
  const auto& hubs = market::HubRegistry::instance();
  const auto hourly = hubs.hourly_hubs();
  std::vector<core::Cluster> clusters;
  for (std::size_t i = 0; i < hourly.size(); ++i) {
    core::Cluster c;
    c.id = ClusterId{static_cast<std::int32_t>(i)};
    c.hub = hourly[i];
    c.label = hubs.info(hourly[i]).code;
    c.location = hubs.info(hourly[i]).location;
    const double cap = total_capacity * shares[i];
    c.capacity = HitsPerSec{cap};
    c.servers = static_cast<int>(std::ceil(cap / 300.0));
    c.p95_reference = HitsPerSec{cap * 0.8};
    clusters.push_back(c);
  }
  return clusters;
}

double normalized_cost(const core::Fixture& fx,
                       const std::vector<core::Cluster>& clusters, double km) {
  const auto& states = geo::StateRegistry::instance();
  std::vector<geo::LatLon> sites;
  for (const auto& c : clusters) sites.push_back(c.location);
  const geo::DistanceModel distances(states.all(), sites);

  core::EngineConfig cfg;
  cfg.energy = energy::optimistic_future_params();
  cfg.enforce_p95 = false;

  core::TraceWorkload workload(fx.trace, fx.allocation);
  const core::SimulationEngine engine(clusters, fx.prices(), distances, cfg);

  core::ClosestRouter closest(distances, clusters.size());
  core::SimulationEngine base_engine(clusters, fx.prices(), distances, cfg);
  const double base = base_engine.run(workload, closest).total_cost.value();

  core::PriceAwareConfig rcfg;
  rcfg.distance_threshold = Km{km};
  core::PriceAwareRouter router(distances, clusters.size(), rcfg);
  const double opt = engine.run(workload, router).total_cost.value();
  return opt / base;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Ablation: server distribution",
                "Normalized cost vs threshold for three deployments "
                "(24-day trace, (0%,1.1), baseline = closest-cluster)");

  const core::Fixture& fx = bench::fixture(seed);
  double total_capacity = 0.0;
  for (const auto& c : fx.clusters) total_capacity += c.capacity.value();

  const std::size_t n = market::HubRegistry::instance().hourly_hubs().size();
  std::vector<double> even(n, 1.0 / static_cast<double>(n));
  // Heterogeneous: NYC/CA-heavy coastal deployment.
  std::vector<double> coastal(n, 0.5 / static_cast<double>(n));
  {
    const auto& hubs = market::HubRegistry::instance();
    const auto hourly = hubs.hourly_hubs();
    double assigned = 0.5;
    for (std::size_t i = 0; i < n; ++i) {
      const auto code = hubs.info(hourly[i]).code;
      if (code == "NYC" || code == "NP15" || code == "SP15" || code == "MA-BOS" ||
          code == "NJ") {
        coastal[i] += 0.1;
        assigned -= 0.1;
      }
    }
    (void)assigned;
  }

  io::Table table({"threshold (km)", "akamai-like 9", "even 29 hubs",
                   "coastal-heavy 29"});
  io::CsvWriter csv(bench::csv_path("ablation_server_distribution"));
  csv.row({"threshold_km", "akamai9", "even29", "coastal29"});

  const auto even_clusters = synthetic_deployment(even, total_capacity);
  const auto coastal_clusters = synthetic_deployment(coastal, total_capacity);

  for (double km : {0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    // Akamai-like: compare price-aware vs closest on the real clusters.
    core::ScenarioSpec s{
        .router = "closest",
        .energy = energy::optimistic_future_params(),
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
    };
    const double ak_base = core::run_scenario(fx, s).total_cost.value();
    s.router = "price-aware";
    s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
    const double ak = core::run_scenario(fx, s).total_cost.value() / ak_base;

    const double ev = normalized_cost(fx, even_clusters, km);
    const double co = normalized_cost(fx, coastal_clusters, km);

    char km_s[16], a_s[16], e_s[16], c_s[16];
    std::snprintf(km_s, sizeof(km_s), "%.0f", km);
    std::snprintf(a_s, sizeof(a_s), "%.3f", ak);
    std::snprintf(e_s, sizeof(e_s), "%.3f", ev);
    std::snprintf(c_s, sizeof(c_s), "%.3f", co);
    table.add_row({km_s, a_s, e_s, c_s});
    csv.row({io::format_number(km, 0), io::format_number(ak, 4),
             io::format_number(ev, 4), io::format_number(co, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: all distributions show similar decreasing "
              "cost-vs-threshold curves; more locations give the optimizer "
              "more markets to arbitrage.\n");
  std::printf("CSV: %s\n", bench::csv_path("ablation_server_distribution").c_str());
  return 0;
}
