// Fig 19: change in per-cluster cost for 39-month simulations at four
// distance thresholds ((0% idle, 1.1 PUE), 95/5 constraints followed).
// Expected shape: NYC sheds the most cost, magnitudes grow with the
// threshold, cheap hubs (Chicago/Texas) absorb load. One baseline run
// feeds every threshold's comparison.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 19",
                "Per-cluster cost change (percent of baseline total), "
                "39-month synthetic workload, follow 95/5");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> thresholds = {500.0, 1000.0, 1500.0, 2000.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kSynthetic39Month,
  };
  specs.push_back(base);
  for (const double km : thresholds) {
    core::ScenarioSpec s = base;
    s.router = "price-aware";
    s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
    s.enforce_p95 = true;
    specs.push_back(s);
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs);

  io::CsvWriter csv(bench::csv_path("fig19_per_cluster"));
  {
    std::vector<std::string> head = {"threshold_km"};
    for (const auto& c : fx.clusters) head.emplace_back(c.label);
    head.emplace_back("total_savings_pct");
    csv.row(head);
  }

  std::vector<std::string> header_cells = {"threshold"};
  for (const auto& c : fx.clusters) header_cells.emplace_back(c.label);
  io::Table table(header_cells);

  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double km = thresholds[i];
    const core::SavingsReport r = core::compare(runs[0], runs[1 + i]);
    // Built with += rather than chained + to dodge GCC 12's -Wrestrict
    // false positive (PR105329) on temporary string concatenation.
    std::string row_label = "<";
    row_label += io::format_number(km, 0);
    row_label += "km";
    std::vector<std::string> row = {row_label};
    std::vector<std::string> csv_row = {io::format_number(km, 0)};
    for (double d : r.per_cluster_delta_percent) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%+.2f%%", d);
      row.emplace_back(buf);
      csv_row.push_back(io::format_number(d, 4));
    }
    csv_row.push_back(io::format_number(r.savings_percent, 3));
    table.add_row(row);
    csv.row(csv_row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: the largest reduction is at NYC (highest peak\n"
              "prices); requests are not always routed away from NYC - the\n"
              "flow depends on time of day. Magnitudes grow with the\n"
              "threshold.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig19_per_cluster").c_str());
  return 0;
}
