// Fig 7: histograms of hour-to-hour change in real-time hourly prices
// for Palo Alto (NP15) and Chicago (PJM) over the 39-month period.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 7",
                "Hour-to-hour price change distributions, 39 months (paper "
                "values in brackets)");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();

  io::CsvWriter csv(bench::csv_path("fig07_hourly_change"));
  csv.row({"hub", "bin_center", "fraction"});

  for (const auto& t : market::fig7_targets()) {
    const market::ChangeStats c = market::measure_changes(prices, hubs, t.hub_code);
    std::printf("%s:\n", std::string(t.hub_code).c_str());
    std::printf("  mu=%.1f  sigma=%.1f [%.1f]  kappa=%.1f [%.1f]\n",
                c.summary.mean, c.summary.stddev, t.sigma, c.summary.kurtosis,
                t.kurtosis);
    std::printf("  %.0f%% within +/-$20 [%.0f%%], %.0f%% within +/-$40 [%.0f%%]\n",
                100.0 * c.frac_within_20, 100.0 * t.frac_within_20,
                100.0 * c.frac_within_40, 100.0 * t.frac_within_40);

    const HubId id = hubs.by_code(t.hub_code);
    const auto diffs = stats::first_differences(prices.rt[id.index()].values());
    stats::Histogram hist(-50.0, 50.0, 5.0);
    hist.add_all(diffs);
    std::printf("%s\n", hist.ascii(46).c_str());
    for (const auto& row : hist.rows()) {
      csv.row({std::string(t.hub_code), io::format_number(row.center, 1),
               io::format_number(row.fraction, 5)});
    }
  }
  std::printf("CSV: %s\n", bench::csv_path("fig07_hourly_change").c_str());
  return 0;
}
