// Fig 9: hourly price differentials over an eight-day window for
// PaloAlto-Richmond and Austin-Richmond (mid-August 2008, as in the
// paper). Spikes and sign-alternating asymmetry are the features.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 9",
                "Hourly price differentials, 2008-08-09 .. 2008-08-23 "
                "(PaloAlto-Richmond, Austin-Richmond)");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();

  const Period window{hour_at(CivilDate{2008, 8, 9}),
                      hour_at(CivilDate{2008, 8, 23})};
  const auto pa = prices.rt[hubs.by_code("NP15").index()].slice(window);
  const auto tx = prices.rt[hubs.by_code("ERCOT-S").index()].slice(window);
  const auto va = prices.rt[hubs.by_code("DOM").index()].slice(window);

  io::CsvWriter csv(bench::csv_path("fig09_differential_series"));
  csv.row({"hour", "paloalto_minus_richmond", "austin_minus_richmond"});
  int pa_pos = 0, pa_neg = 0, tx_pos = 0, tx_neg = 0;
  double pa_extreme = 0.0, tx_extreme = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d1 = pa[i] - va[i];
    const double d2 = tx[i] - va[i];
    csv.row({hour_label(window.begin + static_cast<HourIndex>(i)),
             io::format_number(d1, 2), io::format_number(d2, 2)});
    (d1 > 0 ? pa_pos : pa_neg) += 1;
    (d2 > 0 ? tx_pos : tx_neg) += 1;
    pa_extreme = std::max(pa_extreme, std::abs(d1));
    tx_extreme = std::max(tx_extreme, std::abs(d2));
  }

  std::printf("PaloAlto-Richmond: favoured PA %d hrs / VA %d hrs, extreme "
              "|diff| $%.0f\n",
              pa_neg, pa_pos, pa_extreme);
  std::printf("Austin-Richmond:   favoured TX %d hrs / VA %d hrs, extreme "
              "|diff| $%.0f\n",
              tx_neg, tx_pos, tx_extreme);
  std::printf("Shape check: asymmetry flips sign within the window; spikes "
              "stand far off the mean (paper: largest spike $1900).\n");
  std::printf("CSV: %s\n", bench::csv_path("fig09_differential_series").c_str());
  return 0;
}
