// Fig 3: daily averages of day-ahead peak prices at four hubs over the
// study period. The shapes to verify: the 2008 natural-gas hump in
// gas-exposed regions, its absence in the hydro Northwest, April dips in
// the Northwest, and the 2009 downturn everywhere.

#include "bench_common.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 3",
                "Daily day-ahead peak prices, Jan 2006 - Mar 2009 "
                "(Portland OR, Richmond VA, Houston TX, Palo Alto CA)");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& reg = market::HubRegistry::instance();

  const char* hubs[] = {"MID-C", "DOM", "ERCOT-H", "NP15"};
  io::CsvWriter csv(bench::csv_path("fig03_daily_prices"));
  csv.row({"day", "MID-C", "DOM", "ERCOT-H", "NP15"});

  std::vector<market::DailySeries> series;
  for (const char* code : hubs) {
    series.push_back(sim.daily_day_ahead_peak(prices, reg.by_code(code)));
  }
  const std::size_t days = series[0].values.size();
  for (std::size_t d = 0; d < days; ++d) {
    const CivilDate date = civil_from_days(
        series[0].first_day + static_cast<std::int64_t>(d) + epoch_days());
    char label[16];
    std::snprintf(label, sizeof(label), "%04d-%02d-%02d", date.year, date.month,
                  date.day);
    csv.row({label, io::format_number(series[0].values[d], 2),
             io::format_number(series[1].values[d], 2),
             io::format_number(series[2].values[d], 2),
             io::format_number(series[3].values[d], 2)});
  }

  // Console: monthly means per hub (compact view of the same series).
  io::Table table({"month", "Portland", "Richmond", "Houston", "PaloAlto"});
  for (int m = 0; m < 39; m += 3) {
    std::vector<std::string> row = {month_label(m)};
    for (const auto& s : series) {
      const std::int64_t lo = day_index(month_begin(m)) - s.first_day;
      const std::int64_t hi = day_index(month_end(m)) - s.first_day;
      double sum = 0.0;
      int n = 0;
      for (std::int64_t d = lo; d < hi && d < static_cast<std::int64_t>(days); ++d) {
        if (d >= 0) {
          sum += s.values[static_cast<std::size_t>(d)];
          ++n;
        }
      }
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f", n > 0 ? sum / n : 0.0);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  // Shape summary.
  auto months_mean = [&](const market::DailySeries& s, int lo_month, int hi_month) {
    const std::int64_t lo = day_index(month_begin(lo_month)) - s.first_day;
    const std::int64_t hi = day_index(month_begin(hi_month)) - s.first_day;
    double sum = 0.0;
    int n = 0;
    for (std::int64_t d = std::max<std::int64_t>(0, lo); d < hi; ++d) {
      sum += s.values[static_cast<std::size_t>(d)];
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };
  std::printf("2008 summer / 2006 mean ratio (paper: elevated for gas regions, "
              "flat for the Northwest):\n");
  const char* names[] = {"Portland (hydro)", "Richmond", "Houston", "Palo Alto"};
  for (std::size_t i = 0; i < 4; ++i) {
    const double ratio =
        months_mean(series[i], 29, 32) / months_mean(series[i], 0, 12);
    std::printf("  %-18s %.2f\n", names[i], ratio);
  }
  std::printf("CSV: %s\n", bench::csv_path("fig03_daily_prices").c_str());
  return 0;
}
