// Extension (§5.2): the paper reacts to hour-old prices ("we use the
// previous hour's price") and Figure 20 shows how savings decay as that
// reaction delay grows. This bench quantifies the opposite direction on
// the sub-hourly axis the RTOs actually publish: how much of the
// 5-minute settlement's volatility becomes routable as the reaction
// delay shrinks below an hour. ScenarioSpec::delay_steps runs the same
// 24-day trace on the true 5-minute market, reacting to the settlement
// N intervals back: 12 steps reproduces the paper's one-hour delay
// byte-for-byte, 1 step reacts to the previous 5-minute print.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: price freshness on the 5-minute market",
                "24-day trace, google-like elasticity, 1500 km threshold, "
                "95/5 enforced; 5-minute settlement, routing reacts to the "
                "price delay_steps intervals back");

  const core::Fixture& fx = bench::fixture(seed);

  core::ScenarioSpec routed{
      .router = "price-aware",
      .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
  routed.market_interval_minutes = 5;
  core::ScenarioSpec baseline = routed;
  baseline.router = "baseline";
  baseline.config = std::monostate{};

  io::Table table({"reaction delay", "baseline $", "price-aware $", "saved %",
                   "vs 60 min"});
  bench::TimedCsv csv(bench::csv_path("ext_delay_steps"));
  csv.header({"reaction_delay_min", "baseline_usd", "optimized_usd",
              "saved_pct"});

  // One sweep: the baseline engine is shared by key, each delay cell
  // gets its own (the delay is baked into the routing-price lookup).
  std::vector<core::ScenarioSpec> cells;
  cells.push_back(baseline);
  const int delays[] = {12, 6, 3, 1};  // 60, 30, 15, 5 minutes
  for (const int steps : delays) {
    core::ScenarioSpec cell = routed;
    cell.delay_steps = steps;
    cells.push_back(cell);
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, cells);

  const double base_usd = runs[0].total_cost.value();
  double hour_usd = 0.0;
  for (std::size_t i = 0; i < std::size(delays); ++i) {
    const double usd = runs[i + 1].total_cost.value();
    if (i == 0) hour_usd = usd;
    const double saved_pct = 100.0 * (1.0 - usd / base_usd);
    const int minutes = delays[i] * 5;

    char cells_fmt[5][32];
    std::snprintf(cells_fmt[0], sizeof(cells_fmt[0]), "%d min", minutes);
    std::snprintf(cells_fmt[1], sizeof(cells_fmt[1]), "%.0f", base_usd);
    std::snprintf(cells_fmt[2], sizeof(cells_fmt[2]), "%.0f", usd);
    std::snprintf(cells_fmt[3], sizeof(cells_fmt[3]), "%.3f", saved_pct);
    std::snprintf(cells_fmt[4], sizeof(cells_fmt[4]), "%+.0f", hour_usd - usd);
    table.add_row({cells_fmt[0], cells_fmt[1], cells_fmt[2], cells_fmt[3],
                   cells_fmt[4]});
    csv.row({io::format_number(minutes, 0), io::format_number(base_usd, 2),
             io::format_number(usd, 2), io::format_number(saved_pct, 3)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the 60-minute row is the paper's configuration (delay_steps\n"
      "= 12 reproduces delay_hours = 1 exactly; tests pin the identity).\n"
      "Shrinking the reaction delay lets the router act on intra-hour\n"
      "deviations while they are still live - the AR persistence of the\n"
      "5-minute differential is ~15 minutes, so most of the extra value\n"
      "arrives by the 15-minute row and the last 5-minute step adds only a\n"
      "sliver. The delta column prices the freshness itself: what a faster\n"
      "price feed (not a faster market) is worth under the paper's own\n"
      "routing policy.\n");
  std::printf("CSV: %s\n", bench::csv_path("ext_delay_steps").c_str());
  return 0;
}
