// Fig 4: price variation across market types at the New York City hub -
// real-time 5-minute, real-time hourly, and day-ahead hourly prices over
// two ten-day windows (Feb and Mar 2009).

#include "bench_common.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 4",
                "RT 5-min vs RT hourly vs day-ahead hourly, NYC hub, two "
                "ten-day windows");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const HubId nyc = market::HubRegistry::instance().by_code("NYC");

  const Period windows[] = {
      {hour_at(CivilDate{2009, 2, 10}), hour_at(CivilDate{2009, 2, 20})},
      {hour_at(CivilDate{2009, 3, 3}), hour_at(CivilDate{2009, 3, 13})},
  };

  io::CsvWriter csv(bench::csv_path("fig04_market_types"));
  csv.row({"window", "hour", "rt_hourly", "day_ahead", "rt_5min_mean",
           "rt_5min_min", "rt_5min_max"});

  int w = 0;
  for (const Period& window : windows) {
    ++w;
    const auto rt = prices.rt[nyc.index()].slice(window);
    const auto da = prices.da[nyc.index()].slice(window);
    const market::HourlySeries rt_series(
        window, std::vector<double>(rt.begin(), rt.end()));
    const auto fm = sim.five_minute_series(nyc, rt_series);

    double rt_sigma = stats::stddev(rt);
    double da_sigma = stats::stddev(da);
    double fm_sigma = stats::stddev(fm);
    std::printf("window %d (%s): sigma RT-5min %.1f > RT-hourly %.1f vs "
                "day-ahead %.1f  [paper: RT more volatile than DA]\n",
                w, hour_label(window.begin).c_str(), fm_sigma, rt_sigma,
                da_sigma);

    for (std::size_t h = 0; h < rt.size(); ++h) {
      double lo = 1e18;
      double hi = -1e18;
      double sum = 0.0;
      for (int i = 0; i < 12; ++i) {
        const double v = fm[h * 12 + static_cast<std::size_t>(i)];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
      }
      csv.row({std::to_string(w), hour_label(window.begin + static_cast<HourIndex>(h)),
               io::format_number(rt[h], 2), io::format_number(da[h], 2),
               io::format_number(sum / 12.0, 2), io::format_number(lo, 2),
               io::format_number(hi, 2)});
    }
  }
  std::printf("CSV: %s\n", bench::csv_path("fig04_market_types").c_str());
  return 0;
}
