// Fig 2: the RTO regions and hubs studied in the paper.

#include "bench_common.h"
#include "market/hub.h"

int main() {
  using namespace cebis;
  bench::header("Figure 2", "Regions studied; hubs map market identifiers to "
                            "real locations");

  io::Table table({"RTO", "region", "hubs"});
  io::CsvWriter csv(bench::csv_path("fig02_rto_table"));
  csv.row({"rto", "region", "hub_code", "city", "hourly_market"});

  const auto& reg = market::HubRegistry::instance();
  for (market::Rto rto : market::market_rtos()) {
    std::string hubs;
    for (HubId id : reg.hubs_in(rto)) {
      const auto& info = reg.info(id);
      if (!hubs.empty()) hubs += ", ";
      hubs += std::string(info.city) + " (" + std::string(info.code) + ")";
      csv.row({std::string(market::to_string(rto)),
               std::string(market::region_name(rto)), std::string(info.code),
               std::string(info.city), "1"});
    }
    table.add_row({std::string(market::to_string(rto)),
                   std::string(market::region_name(rto)), hubs});
  }
  // The Northwest: present in Fig 3 but outside the hourly analysis.
  const auto& midc = reg.info(reg.by_code("MID-C"));
  table.add_row({"(none)", "Northwest (daily only)",
                 std::string(midc.city) + " (" + std::string(midc.code) + ")"});
  csv.row({"NONMKT", "Northwest", std::string(midc.code), std::string(midc.city),
           "0"});

  std::printf("%s\n", table.render().c_str());
  std::printf("29 hourly hubs (406 pairs) + 1 daily-only location.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig02_rto_table").c_str());
  return 0;
}
