// Microbenchmarks (google-benchmark): market and trace generation
// throughput.

#include <benchmark/benchmark.h>

#include "market/market_simulator.h"
#include "traffic/trace_generator.h"

namespace {

using namespace cebis;

void BM_MarketGeneration(benchmark::State& state) {
  const market::MarketSimulator sim(2009);
  const HourIndex begin = trace_period().begin;
  const Period period{begin, begin + state.range(0) * 24};
  for (auto _ : state) {
    const market::PriceSet set = sim.generate(period);
    benchmark::DoNotOptimize(set.rt.size());
  }
  state.SetItemsProcessed(state.iterations() * period.hours() * 29);
}
BENCHMARK(BM_MarketGeneration)->Arg(1)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_FullStudyGeneration(benchmark::State& state) {
  const market::MarketSimulator sim(2009);
  for (auto _ : state) {
    const market::PriceSet set = sim.generate(study_period());
    benchmark::DoNotOptimize(set.rt.size());
  }
  state.SetItemsProcessed(state.iterations() * study_period().hours() * 29);
}
BENCHMARK(BM_FullStudyGeneration)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  const traffic::TraceGenerator gen(2009);
  const HourIndex begin = trace_period().begin;
  const Period period{begin, begin + state.range(0) * 24};
  for (auto _ : state) {
    const traffic::TrafficTrace trace = gen.generate(period);
    benchmark::DoNotOptimize(trace.steps());
  }
  state.SetItemsProcessed(state.iterations() * period.hours() * 12 * 51);
}
BENCHMARK(BM_TraceGeneration)->Arg(1)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_FiveMinuteSeries(benchmark::State& state) {
  const market::MarketSimulator sim(2009);
  const Period period{trace_period().begin, trace_period().begin + 7 * 24};
  const market::PriceSet set = sim.generate(period);
  const HubId nyc = market::HubRegistry::instance().by_code("NYC");
  for (auto _ : state) {
    const auto fm = sim.five_minute_series(nyc, set.rt[nyc.index()]);
    benchmark::DoNotOptimize(fm.data());
  }
  state.SetItemsProcessed(state.iterations() * period.hours() * 12);
}
BENCHMARK(BM_FiveMinuteSeries);

}  // namespace

BENCHMARK_MAIN();
