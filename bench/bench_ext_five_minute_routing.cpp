// Extension (§3.1): "we restrict ourselves to hourly prices, but
// speculate that the additional volatility in five minute prices
// provides further opportunities."
//
// This bench quantifies the speculation: the same 24-day workload routed
// once per hour on hourly prices versus once per 5-minute interval on
// 5-minute prices, comparing variable-energy cost. (Runs outside the
// SimulationEngine, which is hourly-priced by design; the loop below is
// the 5-minute analogue of its inner step.)

#include "bench_common.h"
#include "market/market_simulator.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: five-minute routing (paper §3.1)",
                "Hourly vs 5-minute price reaction, fully elastic clusters, "
                "2500 km threshold, relax 95/5");

  const core::Fixture& fx = bench::fixture(seed);
  const market::MarketSimulator sim(seed);
  const Period window = trace_period();

  // 5-minute price series per traffic hub (12 samples per hour).
  std::vector<std::vector<double>> fm(fx.clusters.size());
  for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
    const HubId hub = fx.clusters[c].hub;
    const market::HourlySeries hourly(
        window, std::vector<double>(fx.prices().rt[hub.index()].slice(window).begin(),
                                    fx.prices().rt[hub.index()].slice(window).end()));
    fm[c] = sim.five_minute_series(hub, hourly);
  }

  core::TraceWorkload workload(fx.trace, fx.allocation);
  core::PriceAwareConfig rcfg;
  rcfg.distance_threshold = Km{2500.0};
  core::PriceAwareRouter hourly_router(fx.distances, fx.clusters.size(), rcfg);
  core::PriceAwareRouter fm_router(fx.distances, fx.clusters.size(), rcfg);

  const energy::ClusterEnergyModel model(energy::fully_proportional_params());
  const std::size_t n_states = workload.state_count();
  const std::size_t n_clusters = fx.clusters.size();
  std::vector<double> demand(n_states);
  std::vector<double> capacity(n_clusters);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    capacity[c] = fx.clusters[c].capacity.value();
  }
  std::vector<double> hourly_price(n_clusters);
  std::vector<double> fm_price(n_clusters);
  core::Allocation alloc_hourly(n_states, n_clusters);
  core::Allocation alloc_fm(n_states, n_clusters);

  double cost_hourly = 0.0;
  double cost_fm = 0.0;
  const Hours dt{1.0 / 12.0};
  for (std::int64_t step = 0; step < workload.steps(); ++step) {
    const HourIndex hour = window.begin + step / 12;
    workload.demand(step, demand);
    for (std::size_t c = 0; c < n_clusters; ++c) {
      // Hourly routing reacts to the previous hour; 5-minute routing to
      // the previous 5-minute interval.
      hourly_price[c] = fx.prices().rt_at(fx.clusters[c].hub, hour - 1).value();
      const std::int64_t fm_idx = std::max<std::int64_t>(0, step - 1);
      fm_price[c] = fm[c][static_cast<std::size_t>(fm_idx)];
    }
    core::RoutingContext ctx;
    ctx.demand = demand;
    ctx.capacity = capacity;

    ctx.price = hourly_price;
    hourly_router.route(ctx, alloc_hourly);
    ctx.price = fm_price;
    fm_router.route(ctx, alloc_fm);

    // Bill both at the concurrent 5-minute price (the true spot cost).
    for (std::size_t c = 0; c < n_clusters; ++c) {
      const double spot = fm[c][static_cast<std::size_t>(step)];
      const auto bill = [&](const core::Allocation& a) {
        const double u = a.cluster_total(c) / capacity[c];
        return model.energy(u, fx.clusters[c].servers, dt).value() * spot;
      };
      cost_hourly += bill(alloc_hourly);
      cost_fm += bill(alloc_fm);
    }
  }

  io::Table table({"reaction granularity", "24-day cost ($)", "vs hourly (%)"});
  char h_s[24], f_s[24], d_s[16];
  std::snprintf(h_s, sizeof(h_s), "%.0f", cost_hourly);
  std::snprintf(f_s, sizeof(f_s), "%.0f", cost_fm);
  std::snprintf(d_s, sizeof(d_s), "%+.2f", 100.0 * (cost_fm / cost_hourly - 1.0));
  table.add_row({"hourly prices (paper §6)", h_s, "+0.00"});
  table.add_row({"5-minute prices", f_s, d_s});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: reacting at 5-minute granularity captures the intra-hour\n"
      "volatility the paper set aside - a further ~5-10%% off the fully\n"
      "variable cost component in this market, confirming §3.1's\n"
      "speculation that the finer market holds additional opportunity.\n");

  // Plain CsvWriter on purpose: both rows fall out of one fused loop,
  // so per-row wall times (bench::TimedCsv) would carry no information.
  io::CsvWriter csv(bench::csv_path("ext_five_minute_routing"));
  csv.row({"granularity", "cost_usd"});
  csv.row({"hourly", io::format_number(cost_hourly, 2)});
  csv.row({"five_minute", io::format_number(cost_fm, 2)});
  std::printf("CSV: %s\n", bench::csv_path("ext_five_minute_routing").c_str());
  return 0;
}
