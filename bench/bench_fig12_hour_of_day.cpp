// Fig 12: price differential distributions by hour of day (EST) for
// PaloAlto-Richmond, Boston-NYC, and Chicago-Peoria. The time-zone gap
// drives the PaloAlto-Virginia pattern (paper: Virginia favoured before
// 5am eastern, reversed by 6am).

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/timeseries.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 12",
                "Differential median/IQR by hour of day (EST), three pairs");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();

  struct Pair {
    const char* a;
    const char* b;
    const char* label;
  };
  const Pair pairs[] = {
      {"NP15", "DOM", "PaloAlto minus Richmond"},
      {"MA-BOS", "NYC", "Boston minus NYC"},
      {"CHI", "IL", "Chicago minus Peoria"},
  };

  io::CsvWriter csv(bench::csv_path("fig12_hour_of_day"));
  csv.row({"pair", "hour_est", "q25", "median", "q75"});

  for (const Pair& p : pairs) {
    const auto diff = market::differential(prices, hubs, p.a, p.b);
    const auto groups = stats::grouped_quartiles(
        diff,
        [](std::size_t i) {
          return local_hour_of_day(static_cast<HourIndex>(i), -5);
        },
        24);
    std::printf("%s:\n  hour:   ", p.label);
    for (const auto& g : groups) std::printf("%6d", g.group);
    std::printf("\n  median: ");
    for (const auto& g : groups) std::printf("%6.1f", g.q.q50);
    std::printf("\n\n");
    for (const auto& g : groups) {
      csv.row({p.label, std::to_string(g.group), io::format_number(g.q.q25, 2),
               io::format_number(g.q.q50, 2), io::format_number(g.q.q75, 2)});
    }
  }
  std::printf("Shape check: PaloAlto-Richmond swings with the hour (time-zone "
              "offset); Chicago-Peoria's dependency is weaker.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig12_hour_of_day").c_str());
  return 0;
}
