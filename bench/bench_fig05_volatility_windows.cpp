// Fig 5: standard deviation of window-averaged prices, NYC hub, Q1 2009,
// real-time vs day-ahead markets. Paper values: RT 28.5/24.8/21.9/18.1/
// 15.6 for 5min/1h/3h/12h/24h; DA N/A/20.0/19.4/17.1/16.0.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/descriptive.h"
#include "stats/timeseries.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 5",
                "Std-dev of window-averaged NYC prices, Q1 2009 (paper "
                "values in brackets)");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const HubId nyc = market::HubRegistry::instance().by_code("NYC");
  const Period q1{hour_at(CivilDate{2009, 1, 1}), hour_at(CivilDate{2009, 4, 1})};

  const auto rt = prices.rt[nyc.index()].slice(q1);
  const auto da = prices.da[nyc.index()].slice(q1);
  const market::HourlySeries rt_series(q1, std::vector<double>(rt.begin(), rt.end()));
  const auto fm = sim.five_minute_series(nyc, rt_series);

  io::Table table({"window", "RT sigma", "[paper]", "DA sigma", "[paper]"});
  io::CsvWriter csv(bench::csv_path("fig05_volatility_windows"));
  csv.row({"window_hours", "rt_sigma", "da_sigma", "paper_rt", "paper_da"});

  for (const auto& target : market::fig5_targets()) {
    double rt_sigma;
    double da_sigma = -1.0;
    std::string label;
    if (target.window_hours == 0) {
      rt_sigma = stats::stddev(fm);  // raw 5-minute series
      label = "5 min";
    } else {
      const auto w = static_cast<std::size_t>(target.window_hours);
      rt_sigma = stats::stddev(stats::window_average(rt, w));
      da_sigma = stats::stddev(stats::window_average(da, w));
      label = std::to_string(target.window_hours) + " hr";
    }
    char rt_s[32];
    char da_s[32];
    char rt_p[32];
    char da_p[32];
    std::snprintf(rt_s, sizeof(rt_s), "%.1f", rt_sigma);
    std::snprintf(rt_p, sizeof(rt_p), "[%.1f]", target.rt_sigma);
    if (da_sigma >= 0.0) {
      std::snprintf(da_s, sizeof(da_s), "%.1f", da_sigma);
      std::snprintf(da_p, sizeof(da_p), "[%.1f]", target.da_sigma);
    } else {
      std::snprintf(da_s, sizeof(da_s), "N/A");
      std::snprintf(da_p, sizeof(da_p), "[N/A]");
    }
    table.add_row({label, rt_s, rt_p, da_s, da_p});
    csv.row({std::to_string(target.window_hours), io::format_number(rt_sigma, 2),
             da_sigma >= 0 ? io::format_number(da_sigma, 2) : "",
             io::format_number(target.rt_sigma, 2),
             target.window_hours == 0 ? "" : io::format_number(target.da_sigma, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check: RT sigma decreases with window size and exceeds "
              "DA at short windows.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig05_volatility_windows").c_str());
  return 0;
}
