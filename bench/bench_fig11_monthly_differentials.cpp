// Fig 11: PaloAlto-Virginia differential distribution month by month
// (median and inter-quartile range) - asymmetries persist for months,
// then reverse.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/timeseries.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 11",
                "PaloAlto-Virginia differential, monthly median and IQR");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();
  const auto diff = market::differential(prices, hubs, "NP15", "DOM");

  const auto groups = stats::grouped_quartiles(
      diff, [](std::size_t i) { return month_index(static_cast<HourIndex>(i)); },
      39);

  io::CsvWriter csv(bench::csv_path("fig11_monthly_differentials"));
  csv.row({"month", "q25", "median", "q75"});
  io::Table table({"month", "q25", "median", "q75"});
  int sign_flips = 0;
  double prev_median = 0.0;
  for (const auto& g : groups) {
    char q25[16], q50[16], q75[16];
    std::snprintf(q25, sizeof(q25), "%.1f", g.q.q25);
    std::snprintf(q50, sizeof(q50), "%.1f", g.q.q50);
    std::snprintf(q75, sizeof(q75), "%.1f", g.q.q75);
    table.add_row({month_label(g.group), q25, q50, q75});
    csv.row({month_label(g.group), io::format_number(g.q.q25, 2),
             io::format_number(g.q.q50, 2), io::format_number(g.q.q75, 2)});
    if (g.group > 0 && prev_median * g.q.q50 < 0.0) ++sign_flips;
    prev_median = g.q.q50;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("median sign flips across 39 months: %d [paper: sustained "
              "asymmetries that eventually reverse]\n",
              sign_flips);
  std::printf("CSV: %s\n", bench::csv_path("fig11_monthly_differentials").c_str());
  return 0;
}
