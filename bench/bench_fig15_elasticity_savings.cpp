// Fig 15: the headline result - maximum 24-day savings of the
// price-conscious router vs the Akamai-like allocation, across energy
// models (idle%, PUE), with and without the 95/5 bandwidth constraints,
// at a 1500 km distance threshold. One batched sweep: per energy model,
// a baseline run plus the two constrained variants (the relaxed runs
// share the baseline's engine).

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 15",
                "24-day savings vs energy-model elasticity, 1500 km "
                "threshold (percent of the Akamai-like allocation's cost)");

  const core::Fixture& fx = bench::fixture(seed);
  const auto scenarios = energy::fig15_scenarios();

  std::vector<core::ScenarioSpec> specs;
  for (const auto& scn : scenarios) {
    core::ScenarioSpec base{
        .router = "baseline",
        .workload = core::WorkloadKind::kTrace24Day,
    };
    base.energy.idle_fraction = scn.idle_fraction;
    base.energy.pue = scn.pue;
    specs.push_back(base);
    for (const bool follow : {false, true}) {
      core::ScenarioSpec s = base;
      s.router = "price-aware";
      s.config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}};
      s.enforce_p95 = follow;
      specs.push_back(s);
    }
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs);

  io::Table table({"(idle, PUE)", "relax 95/5 (%)", "follow 95/5 (%)"});
  io::CsvWriter csv(bench::csv_path("fig15_elasticity_savings"));
  csv.row({"scenario", "idle_fraction", "pue", "savings_relaxed_pct",
           "savings_followed_pct"});

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& scn = scenarios[i];
    const double relax =
        core::compare(runs[3 * i], runs[3 * i + 1]).savings_percent;
    const double follow =
        core::compare(runs[3 * i], runs[3 * i + 2]).savings_percent;

    char relax_s[16], follow_s[16];
    std::snprintf(relax_s, sizeof(relax_s), "%.1f", relax);
    std::snprintf(follow_s, sizeof(follow_s), "%.1f", follow);
    table.add_row({std::string(scn.label), relax_s, follow_s});
    csv.row({std::string(scn.label), io::format_number(scn.idle_fraction, 2),
             io::format_number(scn.pue, 2), io::format_number(relax, 3),
             io::format_number(follow, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape: fully elastic ~30-40%% relaxed, constraints cut savings\n"
      "to roughly a third; Google-like (65%%, 1.3) drops to ~5%% relaxed and\n"
      "a few percent constrained; savings shrink monotonically with idle/PUE.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig15_elasticity_savings").c_str());
  return 0;
}
