// Extension (§3.1, first-class): "we restrict ourselves to hourly
// prices, but speculate that the additional volatility in five minute
// prices provides further opportunities."
//
// Unlike bench_ext_five_minute_routing (a hand-rolled loop outside the
// engine, kept as the historical comparison), this bench runs the real
// scenario pipeline at native market resolution: the same 24-day trace
// priced hourly, quarter-hourly and at the RTOs' true 5-minute
// settlement via ScenarioSpec::market_interval_minutes - routing,
// billing, demand metering and the battery peak guard all follow the
// native interval. Two figures per granularity: the price-aware savings
// against the baseline router, and the battery-backed
// (price_aware+storage, Lyapunov) tariff bill with exact interval
// demand metering.

#include <vector>

#include "bench_common.h"
#include "storage/storage_controller.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Extension: first-class five-minute markets",
                "24-day trace, google-like elasticity, 1500 km threshold, "
                "95/5 enforced; storage bills wholesale-indexed energy + "
                "$12/kW-month demand on the native interval");

  const core::Fixture& fx = bench::fixture(seed);

  core::ScenarioSpec routed{
      .router = "price-aware",
      .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
  core::ScenarioSpec stored = routed;
  stored.router = "price_aware+storage";
  core::StorageSpec st;
  st.policy = "lyapunov";
  st.battery = storage::battery_for_mean_load(0.2, 4.0);
  st.tariff.demand_usd_per_kw_month = Usd{12.0};
  stored.storage = st;

  io::Table table({"market interval", "baseline $", "price-aware $",
                   "saved %", "storage net $", "net demand $"});
  bench::TimedCsv csv(bench::csv_path("ext_five_minute_market"));
  csv.header({"market_interval_min", "baseline_usd", "optimized_usd",
              "saved_pct", "storage_net_usd", "net_demand_usd"});

  for (const int interval : {60, 15, 5}) {
    routed.market_interval_minutes = interval;
    stored.market_interval_minutes = interval;
    core::ScenarioSpec baseline = routed;
    baseline.router = "baseline";
    baseline.config = std::monostate{};

    // One sweep per granularity: baseline + price-aware share the
    // engine, the storage run adds its observer on top.
    const core::ScenarioSpec cells_spec[] = {baseline, routed, stored};
    const auto runs = core::run_scenarios(fx, cells_spec);
    const double base_usd = runs[0].total_cost.value();
    const double routed_usd = runs[1].total_cost.value();
    const double saved_pct = 100.0 * (1.0 - routed_usd / base_usd);
    const auto& o = runs[2].storage;

    char cells[6][32];
    std::snprintf(cells[0], sizeof(cells[0]), "%d min", interval);
    std::snprintf(cells[1], sizeof(cells[1]), "%.0f", base_usd);
    std::snprintf(cells[2], sizeof(cells[2]), "%.0f", routed_usd);
    std::snprintf(cells[3], sizeof(cells[3]), "%.3f", saved_pct);
    std::snprintf(cells[4], sizeof(cells[4]), "%.0f", o.net_total().value());
    std::snprintf(cells[5], sizeof(cells[5]), "%.0f", o.net_demand.value());
    table.add_row({cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]});
    csv.row({io::format_number(interval, 0),
             io::format_number(base_usd, 2),
             io::format_number(routed_usd, 2),
             io::format_number(saved_pct, 3),
             io::format_number(o.net_total().value(), 2),
             io::format_number(o.net_demand.value(), 2)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: run end-to-end at native settlement, the paper's spatial\n"
      "savings persist essentially unchanged at every granularity: with the\n"
      "conservative one-hour reaction delay the intra-hour deviations (AR\n"
      "persistence ~15 min) are stale before the router sees them, so\n"
      "hourly replay already captures nearly all of the spatial\n"
      "differential - quantifying, rather than confirming, the §3.1\n"
      "speculation (bench_ext_five_minute_routing shows what instant 5-min\n"
      "reaction would add). The storage columns show the flip side of\n"
      "finer settlement: a 5-minute demand meter reads sharper peaks, so\n"
      "the demand line item rises with resolution while the exact interval\n"
      "guard keeps billed net demand at or below raw (no pro-rata sliver).\n");
  std::printf("CSV: %s\n", bench::csv_path("ext_five_minute_market").c_str());
  return 0;
}
