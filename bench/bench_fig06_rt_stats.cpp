// Fig 6: real-time market statistics, hourly prices Jan 2006 - Mar 2009,
// 1% trimmed, for the six hubs the paper tabulates.

#include "bench_common.h"
#include "market/calibration.h"
#include "market/market_simulator.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 6",
                "RT hourly price statistics, 39 months, 1% trimmed (paper "
                "values in brackets)");

  const market::MarketSimulator sim(seed);
  const market::PriceSet prices = sim.generate(study_period());
  const auto& hubs = market::HubRegistry::instance();

  io::Table table(
      {"location", "RTO", "mean", "[paper]", "stddev", "[paper]", "kurt", "[paper]"});
  io::CsvWriter csv(bench::csv_path("fig06_rt_stats"));
  csv.row({"hub", "location", "rto", "mean", "stddev", "kurtosis", "paper_mean",
           "paper_stddev", "paper_kurtosis"});

  for (const auto& t : market::fig6_targets()) {
    const auto s = market::measure_hub(prices, hubs, t.hub_code);
    const auto& info = hubs.info(hubs.by_code(t.hub_code));
    char mean_s[16], mean_p[16], sd_s[16], sd_p[16], k_s[16], k_p[16];
    std::snprintf(mean_s, sizeof(mean_s), "%.1f", s.mean);
    std::snprintf(mean_p, sizeof(mean_p), "[%.1f]", t.mean);
    std::snprintf(sd_s, sizeof(sd_s), "%.1f", s.stddev);
    std::snprintf(sd_p, sizeof(sd_p), "[%.1f]", t.stddev);
    std::snprintf(k_s, sizeof(k_s), "%.1f", s.kurtosis);
    std::snprintf(k_p, sizeof(k_p), "[%.1f]", t.kurtosis);
    table.add_row({std::string(t.location),
                   std::string(market::to_string(info.rto)), mean_s, mean_p, sd_s,
                   sd_p, k_s, k_p});
    csv.row({std::string(t.hub_code), std::string(t.location),
             std::string(market::to_string(info.rto)), io::format_number(s.mean, 2),
             io::format_number(s.stddev, 2), io::format_number(s.kurtosis, 2),
             io::format_number(t.mean, 2), io::format_number(t.stddev, 2),
             io::format_number(t.kurtosis, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV: %s\n", bench::csv_path("fig06_rt_stats").c_str());
  return 0;
}
