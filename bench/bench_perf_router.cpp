// Microbenchmarks (google-benchmark): router and simulation throughput.
// These are performance numbers for the library itself, not paper
// reproductions.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/experiment.h"

namespace {

using namespace cebis;

const core::Fixture& fixture() {
  static const core::Fixture fx = core::Fixture::make(2009);
  return fx;
}

void BM_PriceAwareRoute(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  core::PriceAwareConfig cfg;
  cfg.distance_threshold = Km{static_cast<double>(state.range(0))};
  core::PriceAwareRouter router(fx.distances, fx.clusters.size(), cfg);

  const std::size_t n_states = geo::StateRegistry::instance().size();
  std::vector<double> demand(n_states, 1000.0);
  std::vector<double> price = {54.0, 56.0, 66.5, 77.9, 40.6, 57.8, 64.0, 52.0, 51.0};
  std::vector<double> capacity(fx.clusters.size());
  for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
    capacity[c] = fx.clusters[c].capacity.value();
  }
  core::Allocation alloc(n_states, fx.clusters.size());
  core::RoutingContext ctx;
  ctx.demand = demand;
  ctx.price = price;
  ctx.capacity = capacity;

  for (auto _ : state) {
    router.route(ctx, alloc);
    benchmark::DoNotOptimize(alloc.cluster_totals().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n_states));
}
BENCHMARK(BM_PriceAwareRoute)->Arg(0)->Arg(1500)->Arg(5000);

void BM_TraceSimulation24Day(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const core::ScenarioSpec s{
      .router = "price-aware",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = state.range(0) != 0,
  };
  for (auto _ : state) {
    const core::RunResult r = core::run_scenario(fx, s);
    benchmark::DoNotOptimize(r.total_cost.value());
  }
  state.SetItemsProcessed(state.iterations() * trace_period().hours() * 12);
}
BENCHMARK(BM_TraceSimulation24Day)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Synthetic39MonthSimulation(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const core::ScenarioSpec s{
      .router = "price-aware",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kSynthetic39Month,
      .enforce_p95 = false,
  };
  for (auto _ : state) {
    const core::RunResult r = core::run_scenario(fx, s);
    benchmark::DoNotOptimize(r.total_cost.value());
  }
  state.SetItemsProcessed(state.iterations() * study_period().hours());
}
BENCHMARK(BM_Synthetic39MonthSimulation)->Unit(benchmark::kMillisecond);

// A fig16-style batched threshold sweep: run_scenarios shares one
// engine/workload across all points, versus rebuilding per run_scenario
// call. The items are simulated trace hours across the whole sweep.
void BM_BatchedThresholdSweep(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  std::vector<core::ScenarioSpec> specs;
  for (const double km : {0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    specs.push_back(core::ScenarioSpec{
        .router = "price-aware",
        .config = core::PriceAwareConfig{.distance_threshold = Km{km}},
        .energy = energy::optimistic_future_params(),
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
    });
  }
  const bool batched = state.range(0) != 0;
  for (auto _ : state) {
    if (batched) {
      const auto runs = core::run_scenarios(fx, specs);
      benchmark::DoNotOptimize(runs.back().total_cost.value());
    } else {
      for (const auto& spec : specs) {
        const core::RunResult r = core::run_scenario(fx, spec);
        benchmark::DoNotOptimize(r.total_cost.value());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()) *
                          trace_period().hours());
}
BENCHMARK(BM_BatchedThresholdSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
