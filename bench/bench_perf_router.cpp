// Microbenchmarks (google-benchmark): router and simulation throughput.
// These are performance numbers for the library itself, not paper
// reproductions.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/experiment.h"

namespace {

using namespace cebis;

const core::Fixture& fixture() {
  static const core::Fixture fx = core::Fixture::make(2009);
  return fx;
}

// Every benchmark in this binary must report the same user-counter set:
// google-benchmark's CSV reporter hard-aborts otherwise (CI exports the
// CSV artifact). Router-level benches report the real rebuild rate; the
// engine-level simulations report 0 (their router lives inside
// run_scenario, so its plan cache is not observable from here).
void report_plan_rebuilds(benchmark::State& state, double per_step) {
  state.counters["plan_rebuilds_per_step"] = benchmark::Counter(per_step);
}

void BM_PriceAwareRoute(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  core::PriceAwareConfig cfg;
  cfg.distance_threshold = Km{static_cast<double>(state.range(0))};
  core::PriceAwareRouter router(fx.distances, fx.clusters.size(), cfg);

  const std::size_t n_states = geo::StateRegistry::instance().size();
  std::vector<double> demand(n_states, 1000.0);
  std::vector<double> price = {54.0, 56.0, 66.5, 77.9, 40.6, 57.8, 64.0, 52.0, 51.0};
  std::vector<double> capacity(fx.clusters.size());
  for (std::size_t c = 0; c < fx.clusters.size(); ++c) {
    capacity[c] = fx.clusters[c].capacity.value();
  }
  core::Allocation alloc(n_states, fx.clusters.size());
  core::RoutingContext ctx;
  ctx.demand = demand;
  ctx.price = price;
  ctx.capacity = capacity;

  for (auto _ : state) {
    router.route(ctx, alloc);
    benchmark::DoNotOptimize(alloc.cluster_totals().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n_states));
  // Fixed prices: the plan is built on the first route() and replayed
  // for every subsequent iteration.
  report_plan_rebuilds(state,
                       state.iterations() > 0
                           ? static_cast<double>(router.plan_rebuilds()) /
                                 static_cast<double>(state.iterations())
                           : 0.0);
}
BENCHMARK(BM_PriceAwareRoute)->Arg(0)->Arg(1500)->Arg(5000);

// The hour-scoped plan on a 5-minute cadence: 24 hours x 12 steps with
// per-step demand jitter. Arg(1) reprices once per hour (the trace-run
// shape - the plan is built once and replayed for the other 11 steps);
// Arg(0) reprices every step (worst case - the plan can never be
// replayed). The plan_rebuilds counter confirms which regime ran.
void BM_FiveMinutePlanReplay(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  core::PriceAwareConfig cfg;
  cfg.distance_threshold = Km{1500.0};
  core::PriceAwareRouter router(fx.distances, fx.clusters.size(), cfg);

  const std::size_t n_states = geo::StateRegistry::instance().size();
  const std::size_t n_clusters = fx.clusters.size();
  constexpr int kHours = 24;
  constexpr int kStepsPerHour = 12;
  const bool hourly_prices = state.range(0) != 0;

  const double price_seeds[] = {54.0, 56.0, 66.5, 77.9, 40.6,
                                57.8, 64.0, 52.0, 51.0};
  std::vector<double> base_price(n_clusters);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    base_price[c] = price_seeds[c % std::size(price_seeds)];
  }
  std::vector<double> price(n_clusters, 0.0);
  std::vector<double> demand(n_states, 1000.0);
  std::vector<double> capacity(n_clusters);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    capacity[c] = fx.clusters[c].capacity.value();
  }
  core::Allocation alloc(n_states, n_clusters);
  core::RoutingContext ctx;
  ctx.demand = demand;
  ctx.price = price;
  ctx.capacity = capacity;

  std::int64_t steps = 0;
  for (auto _ : state) {
    for (int hour = 0; hour < kHours; ++hour) {
      for (int s = 0; s < kStepsPerHour; ++s) {
        if (s == 0 || !hourly_prices) {
          const int tick = hourly_prices ? hour : hour * kStepsPerHour + s;
          // Modulus coprime with the 288-step cycle, so consecutive
          // ticks always differ - including across the iteration
          // boundary (tick 287 -> 0) - and Arg(0) truly never replays.
          for (std::size_t c = 0; c < n_clusters; ++c) {
            price[c] = base_price[c] + static_cast<double>((tick + c) % 11);
          }
        }
        for (std::size_t i = 0; i < n_states; ++i) {
          demand[i] = 1000.0 + static_cast<double>((s * 37 + i) % 97);
        }
        router.route(ctx, alloc);
        benchmark::DoNotOptimize(alloc.cluster_totals().data());
        ++steps;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kHours * kStepsPerHour *
                          static_cast<std::int64_t>(n_states));
  report_plan_rebuilds(state,
                       steps > 0 ? static_cast<double>(router.plan_rebuilds()) /
                                       static_cast<double>(steps)
                                 : 0.0);
}
BENCHMARK(BM_FiveMinutePlanReplay)->Arg(0)->Arg(1);

void BM_TraceSimulation24Day(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const core::ScenarioSpec s{
      .router = "price-aware",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = state.range(0) != 0,
  };
  for (auto _ : state) {
    const core::RunResult r = core::run_scenario(fx, s);
    benchmark::DoNotOptimize(r.total_cost.value());
  }
  state.SetItemsProcessed(state.iterations() * trace_period().hours() * 12);
  report_plan_rebuilds(state, 0.0);
}
BENCHMARK(BM_TraceSimulation24Day)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Synthetic39MonthSimulation(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  const core::ScenarioSpec s{
      .router = "price-aware",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kSynthetic39Month,
      .enforce_p95 = false,
  };
  for (auto _ : state) {
    const core::RunResult r = core::run_scenario(fx, s);
    benchmark::DoNotOptimize(r.total_cost.value());
  }
  state.SetItemsProcessed(state.iterations() * study_period().hours());
  report_plan_rebuilds(state, 0.0);
}
BENCHMARK(BM_Synthetic39MonthSimulation)->Unit(benchmark::kMillisecond);

// A fig16-style batched threshold sweep: run_scenarios shares one
// engine/workload across all points, versus rebuilding per run_scenario
// call. The items are simulated trace hours across the whole sweep.
void BM_BatchedThresholdSweep(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  std::vector<core::ScenarioSpec> specs;
  for (const double km : {0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    specs.push_back(core::ScenarioSpec{
        .router = "price-aware",
        .config = core::PriceAwareConfig{.distance_threshold = Km{km}},
        .energy = energy::optimistic_future_params(),
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = false,
    });
  }
  const bool batched = state.range(0) != 0;
  for (auto _ : state) {
    if (batched) {
      const auto runs = core::run_scenarios(fx, specs);
      benchmark::DoNotOptimize(runs.back().total_cost.value());
    } else {
      for (const auto& spec : specs) {
        const core::RunResult r = core::run_scenario(fx, spec);
        benchmark::DoNotOptimize(r.total_cost.value());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()) *
                          trace_period().hours());
  report_plan_rebuilds(state, 0.0);
}
BENCHMARK(BM_BatchedThresholdSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The same style of sweep fanned out over run_scenarios' worker pool:
// 12 cells (6 thresholds x 95/5 on/off) so the pool has real work. Arg
// is SweepOptions::threads - 1 pins the historical serial path, 0 uses
// hardware concurrency. Results are byte-identical either way (guarded
// in tests/test_scenario_api.cpp); this bench measures the wall-clock
// win, which only shows on multi-core hosts (a 1-CPU runner reports
// ~1x by construction).
void BM_ParallelThresholdSweep(benchmark::State& state) {
  const core::Fixture& fx = fixture();
  std::vector<core::ScenarioSpec> specs;
  for (const double km : {0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    for (const bool follow : {false, true}) {
      specs.push_back(core::ScenarioSpec{
          .router = "price-aware",
          .config = core::PriceAwareConfig{.distance_threshold = Km{km}},
          .energy = energy::optimistic_future_params(),
          .workload = core::WorkloadKind::kTrace24Day,
          .enforce_p95 = follow,
      });
    }
  }
  const core::SweepOptions opts{.threads = static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const std::vector<core::RunResult> runs =
        core::run_scenarios(fx, specs, opts);
    benchmark::DoNotOptimize(runs.back().total_cost.value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()) *
                          trace_period().hours() * 12);
  report_plan_rebuilds(state, 0.0);
}
BENCHMARK(BM_ParallelThresholdSweep)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
