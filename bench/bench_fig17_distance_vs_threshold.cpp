// Fig 17: client-server distances vs the optimizer's distance threshold
// (mean and 99th percentile, with and without the 95/5 constraints).
// Reference lines from the paper: Boston-DC ~650 km, Boston-Chicago
// ~1400 km. One batched run_scenarios call across the whole grid.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::header("Figure 17",
                "Traffic-weighted client-server distance vs threshold, "
                "(0% idle, 1.1 PUE)");

  const core::Fixture& fx = bench::fixture(seed);
  const std::vector<double> thresholds = {0.0,    250.0,  500.0,  750.0,
                                          1000.0, 1100.0, 1250.0, 1500.0,
                                          1750.0, 2000.0, 2250.0, 2500.0};

  std::vector<core::ScenarioSpec> specs;
  const core::ScenarioSpec base{
      .router = "baseline",
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
  };
  specs.push_back(base);
  for (const double km : thresholds) {
    for (const bool follow : {true, false}) {
      core::ScenarioSpec s = base;
      s.router = "price-aware";
      s.config = core::PriceAwareConfig{.distance_threshold = Km{km}};
      s.enforce_p95 = follow;
      specs.push_back(s);
    }
  }
  const std::vector<core::RunResult> runs = core::run_scenarios(fx, specs);

  io::Table table({"threshold (km)", "mean", "p99", "mean (ignore 95/5)",
                   "p99 (ignore 95/5)"});
  io::CsvWriter csv(bench::csv_path("fig17_distance_vs_threshold"));
  csv.row({"threshold_km", "mean_km_follow", "p99_km_follow", "mean_km_relax",
           "p99_km_relax"});

  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double km = thresholds[i];
    const core::RunResult& follow = runs[1 + 2 * i];
    const core::RunResult& relax = runs[1 + 2 * i + 1];

    char km_s[16], m_f[16], p_f[16], m_r[16], p_r[16];
    std::snprintf(km_s, sizeof(km_s), "%.0f", km);
    std::snprintf(m_f, sizeof(m_f), "%.0f", follow.mean_distance_km);
    std::snprintf(p_f, sizeof(p_f), "%.0f", follow.p99_distance_km);
    std::snprintf(m_r, sizeof(m_r), "%.0f", relax.mean_distance_km);
    std::snprintf(p_r, sizeof(p_r), "%.0f", relax.p99_distance_km);
    table.add_row({km_s, m_f, p_f, m_r, p_r});
    csv.row({io::format_number(km, 0),
             io::format_number(follow.mean_distance_km, 1),
             io::format_number(follow.p99_distance_km, 1),
             io::format_number(relax.mean_distance_km, 1),
             io::format_number(relax.p99_distance_km, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("baseline (Akamai-like) mean distance: %.0f km\n",
              runs[0].mean_distance_km);
  std::printf("reference: Boston-DC ~650 km (~20 ms RTT), Boston-Chicago "
              "~1400 km.\nPaper shape: distances rise with the threshold; at "
              "1100 km the p99 stays within ~800 km of clients.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig17_distance_vs_threshold").c_str());
  return 0;
}
