// The live service's network server.
//
// Listens on three loopback ports (0 = kernel-assigned, announced on
// stdout as `name_port=N` lines):
//
//   ingest     one settlement feed at a time (see cebis_feed): a
//              SessionMeta frame configures the session, then price
//              ticks and demand steps stream in and the simulation
//              advances as the tick stream seals each step's prices.
//              Every input lands in the binary event log BEFORE it
//              takes effect, so the recorded session replays
//              bit-identically through the batch engine.
//   subscribe  streaming clients get per-step RoutingDecision,
//              Telemetry and SealHeadroom frames (bounded queues,
//              drop-oldest - a slow or killed client never stalls the
//              tick loop).
//   http       GET /metrics, Prometheus text exposition.
//
// A feeder that disconnects (or whose frames arrive torn) is dropped
// with the defect logged; the session stays open and a reconnecting
// feeder resumes from the server's cursor. The server exits after one
// completed feed - with --replay-check it then re-runs the log through
// the batch engine and fails loudly (exit 1) unless every RunResult
// field matches bit-for-bit.

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "io/metrics_export.h"
#include "net/server.h"
#include "net_flags.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/replay.h"

namespace {

constexpr const char* kUsage =
    "usage: cebis_serve [flags]\n"
    "  --ingest-port N      feed port (default 0 = kernel-assigned)\n"
    "  --subscribe-port N   subscriber port (default 0)\n"
    "  --http-port N        /metrics port (default 0)\n"
    "  --no-http            disable the /metrics endpoint\n"
    "  --log PATH           event log destination (default\n"
    "                       cebis_session.eventlog)\n"
    "  --metrics-dir DIR    where to drop the final .prom/.json dumps\n"
    "                       (default .)\n"
    "  --read-timeout-ms N  per-connection read deadline (default 5000)\n"
    "  --queue-cap N        frames buffered per subscriber (default 256)\n"
    "  --no-shadow          skip the shadow baseline (no savings telemetry)\n"
    "  --replay-check       after the feed: replay the log, compare\n"
    "                       bit-for-bit, exit 1 on any mismatch\n"
    "  --quiet              suppress per-connection event logging\n"
    "All ports bind 127.0.0.1. Resolved ports are announced on stdout\n"
    "as ingest_port=N / subscribe_port=N / http_port=N.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cebis;
  examples::FlagParser flags(argc, argv, kUsage);
  net::ServerOptions options;
  options.ingest_port =
      static_cast<std::uint16_t>(flags.integer("--ingest-port", 0));
  options.subscribe_port =
      static_cast<std::uint16_t>(flags.integer("--subscribe-port", 0));
  options.http_port =
      static_cast<std::uint16_t>(flags.integer("--http-port", 0));
  options.enable_http = !flags.boolean("--no-http");
  options.log_path = flags.str("--log", "cebis_session.eventlog");
  const std::string metrics_dir = flags.str("--metrics-dir", ".");
  options.read_timeout_ms =
      static_cast<int>(flags.integer("--read-timeout-ms", 5000));
  options.subscriber_queue_capacity =
      static_cast<std::size_t>(flags.integer("--queue-cap", 256));
  options.shadow_baseline = !flags.boolean("--no-shadow");
  const bool replay_check = flags.boolean("--replay-check");
  options.verbose = !flags.boolean("--quiet");
  flags.finish();

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  options.taps = {&metrics, &tracer};

  net::Server server(options);
  std::printf("ingest_port=%u\nsubscribe_port=%u\nhttp_port=%u\n",
              server.ingest_port(), server.subscribe_port(),
              server.http_port());
  std::fflush(stdout);

  const net::ServerReport report = server.serve();
  if (!report.result) {
    std::fprintf(stderr, "stopped before a feed completed\n");
    return 1;
  }
  const core::RunResult& result = *report.result;
  std::printf(
      "session complete: %lld steps, %lld ticks, %lld connection(s), "
      "$%.2f, %.1f MWh\n",
      static_cast<long long>(report.steps_ingested),
      static_cast<long long>(report.ticks_ingested),
      static_cast<long long>(report.ingest_connections),
      result.total_cost.value(), result.total_energy.value());
  std::printf("subscribers: %lld connected, %lld frames dropped\n",
              static_cast<long long>(report.subscribers_connected),
              static_cast<long long>(report.subscriber_dropped_frames));

  io::write_prometheus_file(metrics.snapshot(),
                            metrics_dir + "/cebis_serve.prom");
  tracer.write(metrics_dir + "/cebis_serve_trace.json");

  if (replay_check) {
    std::printf("replaying %s through the batch engine...\n",
                options.log_path.c_str());
    const core::Fixture fixture = core::Fixture::make(report.meta.seed);
    const core::RunResult replayed =
        service::replay_file(fixture, options.log_path);
    const std::string diff = service::diff_run_results(result, replayed);
    if (!diff.empty()) {
      std::printf("REPLAY MISMATCH: %s\n", diff.c_str());
      return 1;
    }
    std::printf("replay == live: every RunResult field is bit-identical\n");
  }
  return 0;
}
