// Live streaming service mode: drives a LiveEngine from a synthesized
// 5-minute settlement stream, records every input to a binary event
// log, and verifies the replay-equals-live contract at the end.
//
// The "feed" is the fixture's own generated market, replayed tick by
// tick in settlement order: each 5-minute interval first publishes
// every hub's price (on_price_tick), then the demand steps that became
// fully priced advance the simulation (advance). Rolling telemetry -
// bill rate, savings vs the baseline routing, plan rebuilds - streams
// between steps, the numbers an operator dashboard would chart. When
// the window is done the recorded log is re-run through the batch
// engine (service/replay.h) and every RunResult field is compared
// bit-for-bit.
//
// The whole session is tapped by the obs layer (write-only: the
// numbers never feed back into a decision, so results are
// byte-identical with the taps absent). Each simulated day - and once
// more at the end - the metrics registry is dumped as a Prometheus
// text snapshot (<metrics-dir>/cebis_serve.prom, the file a node
// exporter's textfile collector would scrape), and the finished run's
// spans land in <metrics-dir>/cebis_serve_trace.json, loadable in
// Perfetto / chrome://tracing.
//
// Usage: cebis_serve [hours] [seed] [log-path] [metrics-dir]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "io/metrics_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/live_engine.h"
#include "service/replay.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::int64_t hours = argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 48;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2009;
  const std::string log_path =
      argc > 3 ? argv[3] : "cebis_session.eventlog";
  const std::string metrics_dir = argc > 4 ? argv[4] : ".";
  if (hours <= 0) {
    std::fprintf(stderr,
                 "usage: cebis_serve [hours > 0] [seed] [log-path] "
                 "[metrics-dir]\n");
    return 2;
  }
  const std::string prom_path = metrics_dir + "/cebis_serve.prom";
  const std::string trace_path = metrics_dir + "/cebis_serve_trace.json";

  std::printf("Building fixture (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  const core::Fixture fixture = core::Fixture::make(seed);
  const Period trace = fixture.trace.period();
  const Period window{trace.begin, std::min(trace.begin + hours, trace.end)};

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;

  service::LiveConfig config;
  config.router = "price-aware";
  config.period = window;
  config.steps_per_hour = 12;    // the trace's 5-minute cadence
  config.samples_per_hour = 12;  // a true 5-minute settlement stream
  config.delay_hours = 1;
  config.shadow_baseline = true;
  config.metrics = &metrics;
  config.tracer = &tracer;

  service::EventLogWriter log(log_path, &metrics, &tracer);
  service::LiveEngine live(fixture, config, &log);

  // The synthesized market doubles as the settlement feed: the
  // generator is window-invariant, so these are exactly the prices a
  // batch scenario over the same window would see.
  const int sph = config.samples_per_hour;
  const Period priced{window.begin - config.delay_hours, window.end};
  const market::PriceSet& feed = fixture.prices_covering(priced, sph);

  std::vector<HubId> hubs;
  for (const core::Cluster& c : fixture.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }

  const core::TraceWorkload demand_feed(fixture.trace, fixture.allocation);
  std::vector<double> demand(demand_feed.state_count(), 0.0);

  std::printf("Serving %lld hours, %zu hubs ticking every 5 minutes...\n",
              static_cast<long long>(window.hours()), hubs.size());
  std::int64_t days_reported = 0;
  for (std::int64_t interval = priced.begin * sph; interval < window.end * sph;
       ++interval) {
    const HourIndex hour = interval / sph;
    const int sub = static_cast<int>(interval - hour * sph);
    for (const HubId hub : hubs) {
      live.on_price_tick(hub, interval, feed.rt_at(hub, hour, sub).value());
    }
    // Advance every demand step the settlement stream has now sealed.
    while (!live.done() && live.needed_end() <= live.sealed_end()) {
      demand_feed.demand(live.steps_done(), demand);
      live.advance(demand);
    }
    const std::int64_t day = live.steps_done() / (24 * config.steps_per_hour);
    if (day > days_reported && live.steps_done() > 0) {
      days_reported = day;
      const service::LiveTelemetry& t = live.telemetry();
      std::printf(
          "  day %2lld  bill $%.2f  step-mean $%.3f  ewma $%.3f  p95 $%.3f  "
          "savings-mean $%.4f/step  plan rebuilds %lld\n",
          static_cast<long long>(day), live.cost_so_far(),
          t.bill_usd_per_step.mean(), t.bill_usd_per_step.ewma(),
          t.bill_usd_per_step.p95(), t.savings_usd_per_step.mean(),
          static_cast<long long>(t.plan_rebuilds));
      // Periodic exposition: overwrite the textfile-collector snapshot
      // once per simulated day, like a scrape would.
      io::write_prometheus_file(metrics.snapshot(), prom_path);
    }
  }

  const std::int64_t steps = live.steps_done();
  const core::RunResult result = live.finish();
  log.close();
  std::printf("\nLive session complete: %lld steps, $%.2f, %.1f MWh\n",
              static_cast<long long>(steps), result.total_cost.value(),
              result.total_energy.value());
  std::printf("Event log: %s (%lld frames, %lld bytes)\n", log_path.c_str(),
              static_cast<long long>(log.frames()),
              static_cast<long long>(log.bytes_written()));

  io::write_prometheus_file(metrics.snapshot(), prom_path);
  tracer.write(trace_path);
  std::printf("Metrics: %s (%zu series)  Trace: %s (%zu events)\n",
              prom_path.c_str(), metrics.series_count(), trace_path.c_str(),
              tracer.events());

  std::printf("\nReplaying the log through the batch engine...\n");
  const core::RunResult replayed = service::replay_file(fixture, log_path);
  const std::string diff = service::diff_run_results(result, replayed);
  if (diff.empty()) {
    std::printf("replay == live: every RunResult field is bit-identical\n");
    return 0;
  }
  std::printf("REPLAY MISMATCH: %s\n", diff.c_str());
  return 1;
}
