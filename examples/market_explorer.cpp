// Example: explore the synthetic wholesale electricity market.
//
// Generates the full 39-month study period of hourly real-time prices,
// prints per-hub statistics in the style of the paper's Fig 6, the
// hour-to-hour change behaviour of Fig 7, and the correlation structure
// behind Fig 8. Useful both as an API tour of cebis::market and as a
// quick calibration report.
//
// Usage: market_explorer [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "market/calibration.h"
#include "market/market_simulator.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  const auto& hubs = market::HubRegistry::instance();
  market::MarketSimulator sim(seed);
  std::printf("Generating %lld hours of prices for %zu hubs (seed %llu)...\n",
              static_cast<long long>(study_period().hours()), hubs.size(),
              static_cast<unsigned long long>(seed));
  const market::PriceSet prices = sim.generate(study_period());

  std::printf("\n-- Hub statistics (1%% trimmed), paper Fig 6 targets in [] --\n");
  std::printf("%-10s %-20s %8s %8s %8s\n", "hub", "location", "mean", "stddev",
              "kurt");
  for (const auto& t : market::fig6_targets()) {
    const auto s = market::measure_hub(prices, hubs, t.hub_code);
    std::printf("%-10s %-20s %8.1f %8.1f %8.1f   [%.1f %.1f %.1f]\n",
                std::string(t.hub_code).c_str(), std::string(t.location).c_str(),
                s.mean, s.stddev, s.kurtosis, t.mean, t.stddev, t.kurtosis);
  }

  std::printf("\n-- All 29 hourly hubs --\n");
  for (HubId id : hubs.hourly_hubs()) {
    const auto& info = hubs.info(id);
    const auto s = stats::summarize_trimmed(prices.rt[id.index()].values(), 0.005);
    std::printf("%-10s %-22s %-6s mean %6.1f  sd %5.1f  kurt %5.1f\n",
                std::string(info.code).c_str(), std::string(info.city).c_str(),
                std::string(market::to_string(info.rto)).c_str(), s.mean, s.stddev,
                s.kurtosis);
  }

  std::printf("\n-- Hour-to-hour changes, paper Fig 7 targets in [] --\n");
  for (const auto& t : market::fig7_targets()) {
    const auto c = market::measure_changes(prices, hubs, t.hub_code);
    std::printf(
        "%-10s sigma %6.1f [%4.1f]  kurt %6.1f [%4.1f]  within$20 %4.0f%% [%2.0f%%]"
        "  within$40 %4.0f%% [%2.0f%%]\n",
        std::string(t.hub_code).c_str(), c.summary.stddev, t.sigma,
        c.summary.kurtosis, t.kurtosis, 100.0 * c.frac_within_20,
        100.0 * t.frac_within_20, 100.0 * c.frac_within_40, 100.0 * t.frac_within_40);
  }

  std::printf("\n-- Correlation vs distance / RTO boundary (Fig 8) --\n");
  const auto pairs = market::pairwise_correlations(prices, hubs);
  double same_min = 1.0, same_max = 0.0, cross_min = 1.0, cross_max = 0.0;
  int same_below_06 = 0, cross_above_06 = 0, same_n = 0, cross_n = 0;
  for (const auto& p : pairs) {
    if (p.same_rto) {
      ++same_n;
      same_min = std::min(same_min, p.correlation);
      same_max = std::max(same_max, p.correlation);
      if (p.correlation < 0.6) ++same_below_06;
    } else {
      ++cross_n;
      cross_min = std::min(cross_min, p.correlation);
      cross_max = std::max(cross_max, p.correlation);
      if (p.correlation > 0.6) ++cross_above_06;
    }
  }
  std::printf("pairs: %zu (same-RTO %d, cross-RTO %d)\n", pairs.size(), same_n,
              cross_n);
  std::printf("same-RTO  corr range [%.2f, %.2f], below 0.6: %d\n", same_min,
              same_max, same_below_06);
  std::printf("cross-RTO corr range [%.2f, %.2f], above 0.6: %d\n", cross_min,
              cross_max, cross_above_06);

  const auto np15 = hubs.by_code("NP15");
  const auto sp15 = hubs.by_code("SP15");
  const double ca_corr = stats::pearson(prices.rt[np15.index()].values(),
                                        prices.rt[sp15.index()].values());
  std::printf("NP15-SP15 (LA vs Palo Alto) correlation: %.2f  [paper: 0.94]\n",
              ca_corr);

  std::printf("\n-- Differential distributions (Fig 10 targets in []) --\n");
  for (const auto& t : market::fig10_targets()) {
    const auto d = market::differential(prices, hubs, t.hub_a, t.hub_b);
    const auto s = stats::summarize(d);
    std::printf("%-22s mean %6.1f [%6.1f]  sd %6.1f [%6.1f]\n",
                std::string(t.label).c_str(), s.mean, t.mean, s.stddev, t.stddev);
  }
  return 0;
}
