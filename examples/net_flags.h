#ifndef CEBIS_EXAMPLES_NET_FLAGS_H
#define CEBIS_EXAMPLES_NET_FLAGS_H

// Minimal named-flag parsing shared by the network service binaries
// (cebis_serve / cebis_feed). Follows the bench_common.h convention:
// anything unparseable prints the usage and exits 2 - a typo'd flag
// must never silently run with defaults.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace cebis::examples {

/// One --name value (or boolean --name) occurrence.
class FlagParser {
 public:
  FlagParser(int argc, char** argv, std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True when `name` (e.g. "--no-http") is present as a bare flag.
  bool boolean(const char* name) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        args_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// The value following `name`, or `fallback` when absent. A missing
  /// value is a usage error.
  std::string str(const char* name, const std::string& fallback) {
    for (auto it = args_.begin(); it != args_.end(); ++it) {
      if (*it == name) {
        if (it + 1 == args_.end()) fail(std::string(name) + " needs a value");
        const std::string value = *(it + 1);
        args_.erase(it, it + 2);
        return value;
      }
    }
    return fallback;
  }

  /// Integer flag; garbage (trailing characters, out of range) is a
  /// usage error, matching bench_common.h's seed_from_args.
  std::int64_t integer(const char* name, std::int64_t fallback) {
    const std::string raw = str(name, "");
    if (raw.empty()) return fallback;
    char* end = nullptr;
    const long long value = std::strtoll(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0') {
      fail(std::string(name) + " got a non-integer value: " + raw);
    }
    return static_cast<std::int64_t>(value);
  }

  /// Call after the last flag: leftover arguments are a usage error.
  void finish() {
    if (!args_.empty()) {
      fail("unrecognized argument: " + args_.front());
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::fprintf(stderr, "error: %s\n\n%s", why.c_str(), usage_.c_str());
    std::exit(2);
  }

  std::vector<std::string> args_;
  std::string usage_;
};

}  // namespace cebis::examples

#endif  // CEBIS_EXAMPLES_NET_FLAGS_H
