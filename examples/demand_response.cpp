// Example: selling flexibility (paper §7).
//
// The operator enrolls its clusters in triggered demand-response
// programs, responds to grid-stress events by suspending servers and
// rerouting, bids negawatts into the day-ahead market, and aggregates
// small deployments EnerNOC-style.
//
// Usage: demand_response [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "demand_response/aggregator.h"
#include "demand_response/dr_policy.h"
#include "demand_response/negawatt_market.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  const core::Fixture fixture = core::Fixture::make(seed);
  const core::ScenarioSpec scenario{
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  // --- triggered demand response ----------------------------------------
  std::vector<HubId> hubs;
  for (const auto& c : fixture.clusters) hubs.push_back(c.hub);
  const auto events =
      demand_response::generate_events(fixture.prices(), hubs, trace_period());
  std::printf("RTO load-reduction events over the 24-day window: %zu\n",
              events.size());

  demand_response::DrPolicyConfig policy;
  policy.shed_capacity_factor = 0.25;  // suspend 75% of servers on request
  const auto settle =
      demand_response::simulate_participation(fixture, scenario, events, policy);
  std::printf("  enrolled %.2f MW across nine clusters\n", settle.enrolled_mw);
  std::printf("  delivered %.1f MWh of reductions (shortfall %.1f MWh)\n",
              settle.delivered_mwh, settle.shortfall_mwh);
  std::printf("  energy payments  $%8.0f\n", settle.energy_payments.value());
  std::printf("  availability     $%8.0f\n", settle.availability_payments.value());
  std::printf("  penalties        $%8.0f\n", settle.penalties.value());
  std::printf("  reroute delta    $%8.0f (negative = rerouting itself saved money)\n",
              settle.reroute_cost_delta.value());
  std::printf("  net revenue      $%8.0f\n\n", settle.net_revenue.value());

  // --- negawatt bidding ---------------------------------------------------
  demand_response::NegawattStrategy strategy;
  strategy.strike = UsdPerMwh{90.0};
  strategy.offer_fraction = 0.5;
  const auto bids = demand_response::plan_bids(fixture, scenario, strategy);
  const auto nw = demand_response::settle_bids(fixture, scenario, bids);
  std::printf("negawatt day-ahead bids above $%.0f/MWh: %d\n",
              strategy.strike.value(), nw.bids);
  std::printf("  offered %.1f MWh, delivered %.1f, bought back %.1f at RT\n",
              nw.offered_mwh, nw.delivered_mwh, nw.shortfall_mwh);
  std::printf("  DA revenue $%.0f, shortfall cost $%.0f, net $%.0f\n\n",
              nw.da_revenue.value(), nw.rt_shortfall_cost.value(),
              nw.net_revenue.value());

  // --- aggregation ----------------------------------------------------------
  demand_response::Aggregator aggregator(demand_response::AggregationTerms{});
  const auto& registry = market::HubRegistry::instance();
  for (const auto& c : fixture.clusters) {
    aggregator.enroll(demand_response::Site{
        "cdn-cluster", registry.info(c.hub).rto,
        std::max(10.0, static_cast<double>(c.servers) * 0.25)});
  }
  const auto package = aggregator.package();
  std::printf("aggregated flexibility: %.2f MW sellable -> $%.0f/month "
              "availability revenue (sites keep $%.0f)\n",
              package.sellable_mw,
              package.monthly_availability_revenue.value(),
              package.sites_cut.value());
  std::printf("\nPaper §7: flexibility is valuable even without wholesale "
              "price exposure - programs exist in every market studied.\n");
  return 0;
}
