// The settlement-feed client: synthesizes a session from the fixture
// (the same window-invariant market and 24-day trace every batch
// scenario sees) and streams it to a cebis_serve ingest port - the
// SessionMeta first, then price ticks and demand steps merged in
// chronological order, then FeedEnd, waiting for the server's
// completion ack.
//
// Disconnections are survived by design: the client reconnects with
// exponential backoff and resumes from the server's cursor, so
// restarting cebis_serve's network path mid-feed (or yanking the
// connection) re-sends only what the session has not ingested.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/workload.h"
#include "net/feed_client.h"
#include "net/socket.h"
#include "net_flags.h"

namespace {

constexpr const char* kUsage =
    "usage: cebis_feed --port N [flags]\n"
    "  --port N              server ingest port (required)\n"
    "  --host ADDR           server address (default 127.0.0.1)\n"
    "  --hours N             window length in hours (default 48)\n"
    "  --seed N              fixture seed (default 2009)\n"
    "  --router NAME         routing scheme (default price-aware)\n"
    "  --samples-per-hour N  settlement cadence (default 12; the demand\n"
    "                        cadence is the trace's native 5-minute grid)\n"
    "  --max-attempts N      connection attempts before giving up\n"
    "                        (default 8)\n"
    "  --backoff-ms N        initial reconnect backoff, doubling per\n"
    "                        failure (default 50)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cebis;
  examples::FlagParser flags(argc, argv, kUsage);
  net::FeedClientOptions options;
  const std::int64_t port = flags.integer("--port", 0);
  options.host = flags.str("--host", "127.0.0.1");
  const std::int64_t hours = flags.integer("--hours", 48);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.integer("--seed", 2009));
  const std::string router = flags.str("--router", "price-aware");
  const int samples_per_hour =
      static_cast<int>(flags.integer("--samples-per-hour", 12));
  options.max_attempts = static_cast<int>(flags.integer("--max-attempts", 8));
  options.initial_backoff_ms =
      static_cast<int>(flags.integer("--backoff-ms", 50));
  flags.finish();
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: --port must be 1..65535\n\n%s", kUsage);
    return 2;
  }
  if (hours <= 0 || samples_per_hour < 1) {
    std::fprintf(stderr,
                 "error: --hours and --samples-per-hour must be positive"
                 "\n\n%s",
                 kUsage);
    return 2;
  }
  options.port = static_cast<std::uint16_t>(port);

  std::printf("building fixture (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  const core::Fixture fixture = core::Fixture::make(seed);
  const Period trace = fixture.trace.period();
  const Period window{trace.begin, std::min(trace.begin + hours, trace.end)};

  const core::TraceWorkload demand_feed(fixture.trace, fixture.allocation);
  const int steps_per_hour = demand_feed.steps_per_hour();

  service::SessionMeta meta;
  meta.seed = seed;
  meta.router = router;
  meta.period = window;
  meta.steps_per_hour = steps_per_hour;
  meta.samples_per_hour = samples_per_hour;

  // The synthesized market doubles as the settlement feed (the
  // generator is window-invariant - the server's replay sees the same
  // hours), the trace as the demand feed.
  const Period priced{window.begin - meta.delay_hours, window.end};
  const market::PriceSet& prices =
      fixture.prices_covering(priced, samples_per_hour);
  std::vector<HubId> hubs;
  for (const core::Cluster& c : fixture.clusters) {
    bool seen = false;
    for (const HubId h : hubs) seen = seen || h.index() == c.hub.index();
    if (!seen) hubs.push_back(c.hub);
  }
  std::vector<service::PriceTickRecord> ticks;
  ticks.reserve(static_cast<std::size_t>(priced.hours()) *
                static_cast<std::size_t>(samples_per_hour) * hubs.size());
  for (std::int64_t interval = priced.begin * samples_per_hour;
       interval < window.end * samples_per_hour; ++interval) {
    const HourIndex hour = interval / samples_per_hour;
    const int sub = static_cast<int>(interval - hour * samples_per_hour);
    for (const HubId hub : hubs) {
      ticks.push_back({hub, interval, prices.rt_at(hub, hour, sub).value()});
    }
  }

  const std::int64_t steps = window.hours() * steps_per_hour;
  std::vector<service::WorkloadStepRecord> demand(
      static_cast<std::size_t>(steps));
  std::vector<double> row(demand_feed.state_count(), 0.0);
  for (std::int64_t j = 0; j < steps; ++j) {
    demand_feed.demand(j, row);
    demand[static_cast<std::size_t>(j)] = {j, row};
  }

  std::printf("feeding %zu ticks + %lld steps to %s:%u...\n", ticks.size(),
              static_cast<long long>(steps), options.host.c_str(),
              options.port);
  net::FeedClient client(options);
  try {
    const net::FeedReport report = client.run(meta, ticks, demand);
    std::printf(
        "feed complete: %lld ticks, %lld steps over %d connection(s), "
        "%lld skipped on resume; server advanced %lld steps\n",
        static_cast<long long>(report.ticks_sent),
        static_cast<long long>(report.steps_sent), report.connections,
        static_cast<long long>(report.records_skipped),
        static_cast<long long>(report.final_steps_done));
    return 0;
  } catch (const net::NetError& e) {
    std::fprintf(stderr, "feed failed: %s\n", e.what());
    return 1;
  }
}
