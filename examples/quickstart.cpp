// Quickstart: the end-to-end cebis pipeline in ~40 lines of API use.
//
// Builds the experiment fixture (synthetic wholesale market + Akamai-like
// 24-day trace + nine hub clusters), describes each run as a
// ScenarioSpec (router from the registry + config + workload +
// constraints), then compares the Akamai-like baseline against the
// paper's price-conscious router for two energy models, with and
// without 95/5 bandwidth constraints.
//
// Usage: quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  std::printf("Building fixture (39 months of prices, 24-day trace)...\n");
  const core::Fixture fixture = core::Fixture::make(seed);

  for (const auto& c : fixture.clusters) {
    std::printf("  cluster %-4s hub %-8s servers %6d  capacity %9.0f hits/s\n",
                std::string(c.label).c_str(),
                std::string(market::HubRegistry::instance().info(c.hub).code).c_str(),
                c.servers, c.capacity.value());
  }

  struct Case {
    const char* name;
    energy::EnergyModelParams energy;
    bool enforce_p95;
  };
  const Case cases[] = {
      {"future (0% idle, PUE 1.1), relax 95/5", energy::optimistic_future_params(),
       false},
      {"future (0% idle, PUE 1.1), follow 95/5", energy::optimistic_future_params(),
       true},
      {"google (65% idle, PUE 1.3), relax 95/5", energy::google_params(), false},
      {"google (65% idle, PUE 1.3), follow 95/5", energy::google_params(), true},
  };

  std::printf("\n24-day trace, 1500 km distance threshold, $5/MWh price threshold\n");
  for (const Case& c : cases) {
    const core::ScenarioSpec spec{
        .router = "price-aware",
        .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
        .energy = c.energy,
        .workload = core::WorkloadKind::kTrace24Day,
        .enforce_p95 = c.enforce_p95,
    };
    const core::SavingsReport report = core::scenario_savings(fixture, spec);
    std::printf(
        "  %-42s savings %5.1f%%  (mean client-server distance %4.0f -> %4.0f km, "
        "p99 %4.0f km)\n",
        c.name, report.savings_percent, report.baseline_mean_km,
        report.optimized_mean_km, report.optimized_p99_km);
  }
  return 0;
}
