// Replays a recorded live-session event log through the batch engine.
//
// Reads the log (validating the header and every frame's CRC), prints
// the recorded session's configuration, rebuilds the environment from
// the fixture named by the recorded seed, and re-runs the session
// through SimulationEngine::run - the plain batch path. The totals
// printed here are bit-identical to what the live session reported
// (the replay-equals-live contract; cebis_serve verifies it inline,
// tests/test_replay_equals_live.cpp pins it).
//
// Usage: cebis_replay <event-log>

#include <cstdio>
#include <exception>

#include "core/experiment.h"
#include "service/event_log.h"
#include "service/replay.h"

int main(int argc, char** argv) {
  using namespace cebis;
  if (argc < 2) {
    std::fprintf(stderr, "usage: cebis_replay <event-log>\n");
    return 2;
  }

  try {
    const service::RecordedSession session = service::read_session(argv[1]);
    const service::SessionMeta& meta = session.meta;
    std::printf("Recorded session: router '%s', seed %llu\n",
                meta.router.c_str(),
                static_cast<unsigned long long>(meta.seed));
    std::printf(
        "  window [%lld, %lld) hours, %d steps/hour, %d price samples/hour, "
        "delay %d h / %d steps\n",
        static_cast<long long>(meta.period.begin),
        static_cast<long long>(meta.period.end), meta.steps_per_hour,
        meta.samples_per_hour, meta.delay_hours, meta.delay_steps);
    std::printf(
        "  %zu price ticks, %zu workload steps, %zu routing decisions, "
        "%zu storage actions\n",
        session.ticks.size(), session.steps.size(), session.decisions.size(),
        session.storage_actions.size());

    std::printf("Rebuilding fixture (seed %llu) and replaying...\n",
                static_cast<unsigned long long>(meta.seed));
    const core::Fixture fixture = core::Fixture::make(meta.seed);
    const core::RunResult result = service::replay(fixture, session);

    std::printf("\nReplayed run: $%.2f, %.1f MWh, mean distance %.0f km, "
                "overflow steps %lld\n",
                result.total_cost.value(), result.total_energy.value(),
                result.mean_distance_km,
                static_cast<long long>(result.overflow_steps));
    if (result.storage.engaged) {
      std::printf("  storage: raw $%.2f -> net $%.2f (charged %.2f MWh, "
                  "discharged %.2f MWh)\n",
                  result.storage.raw_total().value(),
                  result.storage.net_total().value(),
                  result.storage.charged_mwh, result.storage.discharged_mwh);
    }
    return 0;
  } catch (const service::EventLogError& e) {
    std::fprintf(stderr, "event log error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay failed: %s\n", e.what());
    return 1;
  }
}
