// Example: an operator console for price-aware CDN routing.
//
// Runs the full pipeline for a configurable scenario and prints the
// report an operator would act on: total savings, per-cluster cost
// shifts, client-server distance impact, and a 95/5 billing audit.
//
// Usage:
//   cdn_cost_optimizer [--threshold km] [--idle frac] [--pue x]
//                      [--delay hours] [--relax] [--synthetic] [--seed n]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "io/table.h"

namespace {

double arg_value(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cebis;

  core::PriceAwareConfig router_cfg;
  router_cfg.distance_threshold = Km{arg_value(argc, argv, "--threshold", 1500.0)};

  core::ScenarioSpec scenario;
  scenario.router = "price-aware";
  scenario.config = router_cfg;
  scenario.energy.idle_fraction = arg_value(argc, argv, "--idle", 0.0);
  scenario.energy.pue = arg_value(argc, argv, "--pue", 1.1);
  scenario.delay_hours = static_cast<int>(arg_value(argc, argv, "--delay", 1.0));
  scenario.enforce_p95 = !has_flag(argc, argv, "--relax");
  scenario.workload = has_flag(argc, argv, "--synthetic")
                          ? core::WorkloadKind::kSynthetic39Month
                          : core::WorkloadKind::kTrace24Day;
  const auto seed =
      static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 2009.0));

  std::printf("cebis CDN cost optimizer\n");
  std::printf("  workload:  %s\n", scenario.workload == core::WorkloadKind::kTrace24Day
                                       ? "24-day 5-minute trace"
                                       : "39-month synthetic (hour-of-week)");
  std::printf("  threshold: %.0f km, price threshold $%.0f/MWh, delay %d h\n",
              router_cfg.distance_threshold.value(),
              router_cfg.price_threshold.value(), scenario.delay_hours);
  std::printf("  energy:    idle %.0f%%, PUE %.2f  (inelasticity P0/P1 = %.2f)\n",
              100.0 * scenario.energy.idle_fraction, scenario.energy.pue,
              energy::ClusterEnergyModel(scenario.energy).inelasticity());
  std::printf("  95/5:      %s\n\n",
              scenario.enforce_p95 ? "follow baseline constraints" : "relaxed");

  const core::Fixture fixture = core::Fixture::make(seed);
  core::ScenarioSpec baseline = scenario;
  baseline.router = "baseline";
  baseline.config = std::monostate{};
  const core::ScenarioSpec specs[] = {baseline, scenario};
  const std::vector<core::RunResult> runs = core::run_scenarios(fixture, specs);
  const core::RunResult& base = runs[0];
  const core::RunResult& opt = runs[1];
  const core::SavingsReport report = core::compare(base, opt);

  std::printf("electric bill: $%.0f -> $%.0f   savings %.2f%%\n",
              base.total_cost.value(), opt.total_cost.value(),
              report.savings_percent);
  std::printf("energy:        %.1f MWh -> %.1f MWh (cost, not energy, is "
              "optimized)\n",
              base.total_energy.value(), opt.total_energy.value());
  std::printf("distance:      mean %.0f -> %.0f km, p99 %.0f km\n\n",
              base.mean_distance_km, opt.mean_distance_km, opt.p99_distance_km);

  io::Table table({"cluster", "hub", "baseline $", "optimized $", "delta %",
                   "p95 hits (ref)", "p95 hits (run)"});
  const auto& hubs = market::HubRegistry::instance();
  for (std::size_t c = 0; c < fixture.clusters.size(); ++c) {
    const auto& cluster = fixture.clusters[c];
    char base_s[24], opt_s[24], delta_s[16], ref_s[24], run_s[24];
    std::snprintf(base_s, sizeof(base_s), "%.0f", base.cluster_cost[c]);
    std::snprintf(opt_s, sizeof(opt_s), "%.0f", opt.cluster_cost[c]);
    std::snprintf(delta_s, sizeof(delta_s), "%+.2f",
                  report.per_cluster_delta_percent[c]);
    std::snprintf(ref_s, sizeof(ref_s), "%.0f", cluster.p95_reference.value());
    std::snprintf(run_s, sizeof(run_s), "%.0f", opt.realized_p95[c]);
    table.add_row({std::string(cluster.label),
                   std::string(hubs.info(cluster.hub).code), base_s, opt_s,
                   delta_s, ref_s, run_s});
  }
  std::printf("%s\n", table.render().c_str());

  if (scenario.enforce_p95) {
    bool ok = true;
    for (std::size_t c = 0; c < fixture.clusters.size(); ++c) {
      if (opt.realized_p95[c] >
          fixture.clusters[c].p95_reference.value() * 1.001) {
        ok = false;
      }
    }
    std::printf("95/5 audit: realized p95 %s the baseline references.\n",
                ok ? "respects" : "EXCEEDS");
  }
  if (opt.overflow_steps > 0) {
    std::printf("WARNING: %lld overloaded intervals\n",
                static_cast<long long>(opt.overflow_steps));
  }
  return 0;
}
