// Battery peak shaving in ~60 lines of API use: put a battery behind
// the meter at every cluster, shave each cluster's grid draw toward a
// rolling demand target, and compare the tariff bill (wholesale-indexed
// energy + a monthly $/kW demand charge) with and without the battery.
//
// Shows the storage composition surface: StorageSpec on the scenario,
// the "price_aware+storage" router, and RunResult::storage carrying the
// raw vs net-of-battery accounting.
//
// Usage: battery_peak_shaving [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "storage/battery.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  std::printf("Building fixture (24-day trace; prices materialize lazily)...\n");
  const core::Fixture fixture = core::Fixture::make(seed);

  core::ScenarioSpec spec{
      .router = "price_aware+storage",
      .config = core::PriceAwareConfig{.distance_threshold = Km{1500.0}},
      .energy = energy::google_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = true,
  };
  core::StorageSpec storage;
  storage.policy = "peak-shaving";
  // Clamp each cluster to a slow (3-day) rolling mean of its own load:
  // routed cluster profiles are nearly flat, so the mean itself is the
  // right demand target.
  storage.policy_config = storage::PeakShavingConfig{.window_hours = 72.0};
  storage.tariff.demand_usd_per_kw_month = Usd{12.0};
  spec.storage = storage;

  // Zero-capacity run: raw == net, and its per-cluster energies size the
  // batteries (a 6-hour battery per cluster, arriving half charged).
  const core::RunResult zero = core::run_scenario(fixture, spec);
  const double hours = static_cast<double>(trace_period().hours());
  for (std::size_t c = 0; c < fixture.clusters.size(); ++c) {
    storage::BatteryParams battery = storage::battery_for_mean_load(
        zero.cluster_energy[c] / hours, 6.0);
    battery.initial_soc_fraction = 0.5;
    spec.storage->per_cluster.push_back(battery);
  }
  const core::RunResult shaved = core::run_scenario(fixture, spec);

  std::printf("\n24-day bill under wholesale-indexed energy + $12/kW-month demand:\n");
  std::printf("  %-28s energy $%8.0f  demand $%8.0f  total $%8.0f\n",
              "no battery", zero.storage.net_energy.value(),
              zero.storage.net_demand.value(),
              zero.storage.net_total().value());
  std::printf("  %-28s energy $%8.0f  demand $%8.0f  total $%8.0f\n",
              "peak-shaving (6h battery)", shaved.storage.net_energy.value(),
              shaved.storage.net_demand.value(),
              shaved.storage.net_total().value());
  const double saved = zero.storage.net_total().value() -
                       shaved.storage.net_total().value();
  std::printf("  saved $%.0f (%.2f%%), %.1f MWh served from batteries\n",
              saved, 100.0 * saved / zero.storage.net_total().value(),
              shaved.storage.discharged_mwh);

  std::printf("\nPer-cluster bills (raw -> net of battery):\n");
  for (std::size_t c = 0; c < fixture.clusters.size(); ++c) {
    std::printf("  %-4s $%7.0f -> $%7.0f\n",
                std::string(fixture.clusters[c].label).c_str(),
                shaved.storage.cluster_raw_usd[c],
                shaved.storage.cluster_net_usd[c]);
  }
  return 0;
}
