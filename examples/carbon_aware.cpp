// Example: environmental-cost routing (paper §8).
//
// Swaps the router's objective from dollars to carbon (or a blend) and
// reports the cost/carbon frontier for the 24-day workload.
//
// Usage: carbon_aware [seed]

#include <cstdio>
#include <cstdlib>

#include "carbon/carbon_router.h"
#include "carbon/generation_mix.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace cebis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2009;

  // Regional generation mixes drive hourly carbon intensity.
  std::printf("regional carbon intensity at half load, average wind:\n");
  for (market::Rto rto : market::market_rtos()) {
    const double kg = carbon::mix_intensity(carbon::dispatch(rto, 0.5, 0.5));
    std::printf("  %-6s %4.0f kg CO2/MWh\n",
                std::string(market::to_string(rto)).c_str(), kg);
  }

  const core::Fixture fixture = core::Fixture::make(seed);
  const carbon::CarbonIntensityModel intensity_model(seed);
  const market::PriceSet intensity = intensity_model.generate(study_period());

  const core::ScenarioSpec scenario{
      .config = core::PriceAwareConfig{.distance_threshold = Km{2500.0}},
      .energy = energy::optimistic_future_params(),
      .workload = core::WorkloadKind::kTrace24Day,
      .enforce_p95 = false,
  };

  const auto baseline =
      carbon::run_baseline_carbon(fixture, intensity, scenario);
  std::printf("\nAkamai-like baseline: $%.0f, %.1f t CO2\n", baseline.cost_usd,
              baseline.carbon_kg / 1000.0);

  io::Table table({"objective", "cost ($)", "CO2 (t)", "cost vs base",
                   "CO2 vs base"});
  for (double alpha : {1.0, 0.5, 0.0}) {
    const auto run = carbon::run_blended(fixture, intensity, scenario, alpha);
    const char* label = alpha == 1.0   ? "cheapest dollars"
                        : alpha == 0.0 ? "cleanest energy"
                                       : "50/50 blend";
    char cost_s[24], co2_s[24], cr[16], kr[16];
    std::snprintf(cost_s, sizeof(cost_s), "%.0f", run.cost_usd);
    std::snprintf(co2_s, sizeof(co2_s), "%.1f", run.carbon_kg / 1000.0);
    std::snprintf(cr, sizeof(cr), "%.3f", run.cost_usd / baseline.cost_usd);
    std::snprintf(kr, sizeof(kr), "%.3f", run.carbon_kg / baseline.carbon_kg);
    table.add_row({label, cost_s, co2_s, cr, kr});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("Paper §8: the footprint varies hourly (wind, dispatch stack,\n"
              "seasonal hydro), so carbon-aware routing has real headroom -\n"
              "but the cheapest megawatt-hour is often the dirtiest.\n");
  return 0;
}
